#include "sim/cmp.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/fastfwd.hh"
#include "sim/machine.hh"
#include "snap/snap.hh"

namespace sst
{

namespace
{

/** Highest physical byte a program's timing accesses can touch: the
 *  data image's high-water mark or one past the last instruction's
 *  byte address, whichever is larger. */
Addr
programFootprint(const Program &program, const MemoryImage &image)
{
    return std::max<Addr>(image.highWater(),
                          program.codeBase() + program.size() * 8);
}

} // namespace

Cmp::Cmp(const MachineConfig &config,
         const std::vector<const Program *> &programs)
    : config_(config), programs_(programs), memsys_(config.mem)
{
    fatal_if(programs.empty(), "Cmp needs at least one program");
    const bool shared = memsys_.coherent();
    if (shared) {
        // True shared memory: one physical image for the whole chip.
        // Every program's segments load into it (shared workloads emit
        // identical init data and disjoint per-core result slots), and
        // its write observer feeds the coherence fabric so remote
        // speculative readers of a written line are squashed.
        images_.push_back(std::make_unique<MemoryImage>());
        for (const Program *program : programs)
            images_.back()->loadSegments(*program);
        images_.back()->setWriteObserver([this](Addr addr, unsigned size) {
            memsys_.onFunctionalWrite(addr, size);
        });
    }
    for (std::size_t i = 0; i < programs.size(); ++i) {
        CorePort &port = memsys_.addCore();
        if (!shared) {
            // saltStride bytes of physical window per core keeps
            // line/set alignment while separating the cores'
            // footprints.
            port.setAddressSalt(static_cast<Addr>(i) * saltStride);
            images_.push_back(std::make_unique<MemoryImage>());
            images_.back()->loadSegments(*programs[i]);
            // A footprint past the stride would alias the next core's
            // window and silently corrupt the timing model (shared
            // lines that don't exist architecturally). Refuse up front
            // — aliasing needs a neighbour, so one core is exempt.
            Addr footprint =
                programFootprint(*programs[i], *images_.back());
            fatal_if(programs.size() > 1 && footprint > saltStride,
                     "Cmp: program '%s' footprint 0x%llx exceeds the "
                     "per-core address salt stride 0x%llx; core %zu "
                     "would alias core %zu's physical range",
                     programs[i]->name().c_str(),
                     static_cast<unsigned long long>(footprint),
                     static_cast<unsigned long long>(saltStride), i,
                     i + 1);
        }
        MachineConfig cfg = config_;
        cfg.core.name = "core" + std::to_string(i);
        cores_.push_back(
            makeCore(cfg, *programs[i], *images_.back(), port));
        watchdogs_.push_back(
            std::make_unique<Watchdog>(config_.watchdog, *cores_.back()));
    }
}

CmpResult
Cmp::run(std::uint64_t max_cycles)
{
    const bool fastfwd = fastForwardEnabled();
    while (!allHalted_ && !livelocked_ && cycle_ < max_cycles) {
        allHalted_ = true;
        bool any_retired = false;
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            Core &core = *cores_[i];
            // A halted core's tick/observe are no-ops; don't pay for
            // them every remaining cycle of the run.
            if (core.halted())
                continue;
            std::uint64_t before = core.instsRetired();
            // Functional writes observed during this tick are core i's
            // own (self-invalidation must be skipped).
            memsys_.setActiveCore(static_cast<unsigned>(i));
            core.tick();
            any_retired |= core.instsRetired() != before;
            allHalted_ &= core.halted();
            // One livelocked core sinks the whole chip: the run result
            // must not be mistaken for a throughput measurement.
            if (!watchdogs_[i]->observe())
                livelocked_ = true;
        }
        ++cycle_;

        // Lockstep fast-forward: when every live core is stalled past
        // this cycle, nothing (cores or shared hierarchy) can change
        // until the earliest wake. Halted cores stay frozen, matching
        // the naive loop's early-out tick.
        if (!fastfwd || any_retired || allHalted_ || livelocked_)
            continue;
        Cycle wake = invalidCycle;
        for (auto &core : cores_)
            if (!core->halted())
                wake = std::min(wake, core->nextWakeCycle());
        if (wake <= cycle_)
            continue;
        Cycle target = std::min<Cycle>(wake, max_cycles);
        for (std::size_t i = 0; i < cores_.size(); ++i)
            if (!cores_[i]->halted())
                target = std::min(target, watchdogs_[i]->skipBound());
        if (target <= cycle_)
            continue;
        for (auto &core : cores_)
            if (!core->halted())
                core->advanceIdle(target - cycle_);
        cycle_ = target;
    }

    for (auto &core : cores_)
        core->finalizeAttribution();

    CmpResult res;
    res.preset = config_.presetName;
    res.cores = static_cast<unsigned>(cores_.size());
    res.finished = allHalted_;
    if (!allHalted_)
        res.degrade = livelocked_ ? DegradeReason::Livelock
                                  : DegradeReason::CycleBudget;
    for (auto &dog : watchdogs_)
        res.watchdogRecoveries += dog->recoveries();
    Cycle slowest = 0;
    for (auto &core : cores_) {
        res.totalInsts += core->instsRetired();
        res.perCoreIpc.push_back(core->ipc());
        slowest = std::max(slowest, core->cycles());
    }
    res.cycles = slowest;
    res.aggregateIpc =
        slowest ? static_cast<double>(res.totalInsts)
                      / static_cast<double>(slowest)
                : 0.0;
    return res;
}

std::vector<std::uint8_t>
Cmp::snapshot() const
{
    snap::Writer w;
    w.u64(snap::fileMagic);
    w.u32(snap::formatVersion);
    w.u8(1); // kind: chip multiprocessor
    w.str(config_.presetName);
    w.str(config_.model);
    w.u32(static_cast<std::uint32_t>(cores_.size()));
    for (const Program *program : programs_) {
        w.str(program->name());
        w.u64(programFingerprint(*program));
    }
    w.u64(cycle_);
    w.tag("cmp-state");
    w.b(allHalted_);
    w.b(livelocked_);
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        cores_[i]->save(w);
        watchdogs_[i]->save(w);
    }
    // One image in coherent mode, one per core otherwise.
    for (const auto &image : images_)
        image->save(w);
    memsys_.save(w);
    memsys_.stats().save(w);
    return w.data();
}

void
Cmp::restore(const std::vector<std::uint8_t> &bytes)
{
    snap::Reader r(bytes);
    fatal_if(r.u64() != snap::fileMagic,
             "snapshot: bad magic (not a snapshot file?)");
    std::uint32_t version = r.u32();
    fatal_if(version != snap::formatVersion,
             "snapshot: format version %u, this build reads %u", version,
             snap::formatVersion);
    fatal_if(r.u8() != 1, "snapshot: not a CMP image");
    std::string preset = r.str();
    fatal_if(preset != config_.presetName,
             "snapshot: preset '%s' where '%s' expected", preset.c_str(),
             config_.presetName.c_str());
    std::string model = r.str();
    fatal_if(model != config_.model,
             "snapshot: core model '%s' where '%s' expected",
             model.c_str(), config_.model.c_str());
    std::uint32_t n = r.u32();
    fatal_if(n != cores_.size(),
             "snapshot: %u cores where %zu expected", n, cores_.size());
    for (const Program *program : programs_) {
        std::string name = r.str();
        fatal_if(name != program->name(),
                 "snapshot: workload '%s' where '%s' expected",
                 name.c_str(), program->name().c_str());
        fatal_if(r.u64() != programFingerprint(*program),
                 "snapshot: program '%s' differs from the one "
                 "snapshotted",
                 program->name().c_str());
    }
    cycle_ = r.u64();
    r.tag("cmp-state");
    allHalted_ = r.b();
    livelocked_ = r.b();
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        cores_[i]->load(r);
        watchdogs_[i]->load(r);
    }
    for (const auto &image : images_)
        image->load(r);
    memsys_.load(r);
    memsys_.stats().load(r);
    r.done();
}

Result<void>
Cmp::snapshotToFile(const std::string &path) const
{
    return snap::writeFile(path, snapshot());
}

Result<void>
Cmp::restoreFromFile(const std::string &path)
{
    auto bytes = snap::readFile(path);
    if (!bytes.ok())
        return bytes.error();
    return trapFatal([&] { restore(bytes.value()); });
}

} // namespace sst
