/**
 * @file
 * Sampled simulation (SMARTS-style): alternate cheap functional
 * fast-forward — with cache warming — and detailed cycle-level sample
 * windows, then estimate whole-program IPC from the samples. Makes
 * full-length workloads tractable on the detailed core models.
 *
 * Methodology: the functional cursor and the detailed cores share one
 * MemoryImage and one CorePort, so cache/predictor state flows through
 * the whole run; each detailed window is a fresh core warm-started at
 * the cursor's architectural state and at the shared clock, so memory
 * busy-until state stays consistent across windows.
 */

#ifndef SSTSIM_SIM_SAMPLING_HH
#define SSTSIM_SIM_SAMPLING_HH

#include <vector>

#include "sim/machine.hh"

namespace sst
{

/** Sampling schedule. */
struct SampleParams
{
    /** Instructions per detailed window. */
    std::uint64_t detailInsts = 20'000;
    /** Instructions fast-forwarded (with warming) between windows. */
    std::uint64_t skipInsts = 80'000;
    /** Maximum number of detailed windows (0 = until program end). */
    unsigned maxSamples = 0;
    /** Cycles charged per warmed instruction during fast-forward
     *  (advances the shared clock so DRAM/bank state stays sane). */
    unsigned warmCpi = 2;
};

/** Outcome of a sampled run. */
struct SampledResult
{
    std::string preset;
    /** IPC estimate: committed insts over cycles, summed over windows. */
    double ipc = 0;
    /** Per-window IPCs (for confidence estimation). */
    std::vector<double> windowIpc;
    /** Per-window blending weights (instructions each window stands
     *  for). Empty for plain runSampled() runs, where every window
     *  weighs the same; parallel to windowIpc for library-served runs
     *  (sim/profile.hh). */
    std::vector<double> windowWeight;
    /** Instructions simulated in detail / skipped functionally. */
    std::uint64_t detailedInsts = 0;
    std::uint64_t skippedInsts = 0;
    /** Cache-warming accesses issued during fast-forward, and how many
     *  hit the L1. A healthy run has warmHits > 0: if warming silently
     *  stopped (e.g. every access rejected on full MSHRs), the detailed
     *  windows would start against a cold hierarchy and overestimate
     *  miss rates. */
    std::uint64_t warmAccesses = 0;
    std::uint64_t warmHits = 0;
    bool reachedEnd = false;

    /** Sample standard deviation of the window IPCs. */
    double ipcStddev() const;

    /** Half-width of the 95% confidence interval on the IPC estimate:
     *  1.96 · weighted stddev / sqrt(effective sample count). Uses
     *  windowWeight when present, equal weights otherwise; 0 with
     *  fewer than two windows. */
    double ipcCi95() const;
};

/**
 * Run @p program under @p config with the given sampling schedule.
 * @return the aggregate estimate. The program must halt.
 */
SampledResult runSampled(const MachineConfig &config,
                         const Program &program,
                         const SampleParams &params = {});

} // namespace sst

#endif // SSTSIM_SIM_SAMPLING_HH
