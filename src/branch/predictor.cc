#include "branch/predictor.hh"

#include "common/config.hh"
#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst
{

namespace
{

/** 2-bit saturating counter helpers; >=2 predicts taken. */
void
bumpCounter(std::uint8_t &ctr, bool taken)
{
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

} // namespace

BimodalPredictor::BimodalPredictor(unsigned tableBits)
    : table_(std::size_t{1} << tableBits, 2),
      mask_((1u << tableBits) - 1)
{
}

unsigned
BimodalPredictor::index(std::uint64_t pc) const
{
    return static_cast<unsigned>(pc) & mask_;
}

bool
BimodalPredictor::predict(std::uint64_t pc)
{
    return table_[index(pc)] >= 2;
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken)
{
    bumpCounter(table_[index(pc)], taken);
}

GsharePredictor::GsharePredictor(unsigned tableBits, unsigned historyBits,
                                 bool strandAware)
    : table_(std::size_t{1} << tableBits, 2),
      mask_((1u << tableBits) - 1),
      historyMask_((std::uint64_t{1} << historyBits) - 1),
      strandAware_(strandAware)
{
}

unsigned
GsharePredictor::index(std::uint64_t pc) const
{
    return static_cast<unsigned>(pc ^ history_[strand_]) & mask_;
}

bool
GsharePredictor::predict(std::uint64_t pc)
{
    return table_[index(pc)] >= 2;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    train(pc, taken);
    shiftHistory(taken);
}

void
GsharePredictor::train(std::uint64_t pc, bool taken)
{
    bumpCounter(table_[index(pc)], taken);
}

void
GsharePredictor::trainAt(std::uint64_t pc, bool taken,
                         std::uint64_t history)
{
    unsigned idx = static_cast<unsigned>(pc ^ history) & mask_;
    bumpCounter(table_[idx], taken);
}

void
GsharePredictor::shiftHistory(bool taken)
{
    history_[strand_] =
        ((history_[strand_] << 1) | (taken ? 1 : 0)) & historyMask_;
}

TournamentPredictor::TournamentPredictor(unsigned tableBits,
                                         unsigned historyBits,
                                         bool strandAware)
    : bimodal_(tableBits),
      gshare_(tableBits, historyBits, strandAware),
      chooser_(std::size_t{1} << tableBits, 2),
      mask_((1u << tableBits) - 1)
{
}

bool
TournamentPredictor::predict(std::uint64_t pc)
{
    lastBimodal_ = bimodal_.predict(pc);
    lastGshare_ = gshare_.predict(pc);
    bool useGshare = chooser_[static_cast<unsigned>(pc) & mask_] >= 2;
    return useGshare ? lastGshare_ : lastBimodal_;
}

void
TournamentPredictor::update(std::uint64_t pc, bool taken)
{
    train(pc, taken);
    gshare_.shiftHistory(taken);
}

void
TournamentPredictor::train(std::uint64_t pc, bool taken)
{
    // Re-derive component predictions so training is usable without a
    // preceding predict() (e.g. on a deferred branch at replay).
    bool b = bimodal_.predict(pc);
    bool g = gshare_.predict(pc);
    std::uint8_t &ch = chooser_[static_cast<unsigned>(pc) & mask_];
    if (b != g)
        bumpCounter(ch, g == taken);
    bimodal_.update(pc, taken);
    gshare_.train(pc, taken);
}

void
TournamentPredictor::trainAt(std::uint64_t pc, bool taken,
                             std::uint64_t history)
{
    bool b = bimodal_.predict(pc);
    std::uint64_t cur = gshare_.snapshotHistory();
    gshare_.restoreHistory(history);
    bool g = gshare_.predict(pc);
    gshare_.trainAt(pc, taken, history);
    gshare_.restoreHistory(cur);
    std::uint8_t &ch = chooser_[static_cast<unsigned>(pc) & mask_];
    if (b != g)
        bumpCounter(ch, g == taken);
    bimodal_.update(pc, taken);
}

void
TournamentPredictor::shiftHistory(bool taken)
{
    gshare_.shiftHistory(taken);
}

std::uint64_t
TournamentPredictor::snapshotHistory() const
{
    return gshare_.snapshotHistory();
}

void
TournamentPredictor::restoreHistory(std::uint64_t h)
{
    gshare_.restoreHistory(h);
}

const std::vector<std::string> &
predictorNames()
{
    static const std::vector<std::string> names = {
        "static", "bimodal", "gshare", "tournament"};
    return names;
}

std::unique_ptr<BranchPredictor>
makePredictor(const std::string &kind, bool strandHistory)
{
    if (kind == "static")
        return std::make_unique<StaticPredictor>();
    if (kind == "bimodal")
        return std::make_unique<BimodalPredictor>();
    if (kind == "gshare")
        return std::make_unique<GsharePredictor>(14, 12, strandHistory);
    if (kind == "tournament")
        return std::make_unique<TournamentPredictor>(13, 12,
                                                     strandHistory);
    std::string msg = "unknown branch predictor '" + kind + "'";
    std::string near = closestMatch(kind, predictorNames());
    if (!near.empty())
        msg += "; did you mean '" + near + "'?";
    msg += " (known: static|bimodal|gshare|tournament)";
    fatal("%s", msg.c_str());
}

Btb::Btb(unsigned entries)
    : entries_(entries), mask_(entries - 1)
{
    fatal_if((entries & (entries - 1)) != 0,
             "BTB entry count must be a power of two");
}

std::uint64_t
Btb::lookup(std::uint64_t pc) const
{
    const Entry &e = entries_[static_cast<unsigned>(pc) & mask_];
    return e.tag == pc ? e.target : invalidTarget;
}

void
Btb::update(std::uint64_t pc, std::uint64_t target)
{
    Entry &e = entries_[static_cast<unsigned>(pc) & mask_];
    e.tag = pc;
    e.target = target;
}

ReturnAddressStack::ReturnAddressStack(unsigned depth) : stack_(depth) {}

void
ReturnAddressStack::push(std::uint64_t returnPc)
{
    stack_[top_] = returnPc;
    top_ = (top_ + 1) % stack_.size();
    if (count_ < stack_.size())
        ++count_;
}

std::uint64_t
ReturnAddressStack::pop()
{
    if (count_ == 0)
        return invalidTarget;
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --count_;
    return stack_[top_];
}

namespace
{

void
saveByteTable(snap::Writer &w, const std::vector<std::uint8_t> &table)
{
    w.u32(static_cast<std::uint32_t>(table.size()));
    w.bytes(table.data(), table.size());
}

void
loadByteTable(snap::Reader &r, std::vector<std::uint8_t> &table)
{
    std::uint32_t n = r.u32();
    fatal_if(n != table.size(),
             "snapshot: predictor table has %u entries, expected %zu "
             "(configuration mismatch)",
             n, table.size());
    r.bytes(table.data(), table.size());
}

} // namespace

void
BimodalPredictor::save(snap::Writer &w) const
{
    saveByteTable(w, table_);
}

void
BimodalPredictor::load(snap::Reader &r)
{
    loadByteTable(r, table_);
}

void
GsharePredictor::save(snap::Writer &w) const
{
    saveByteTable(w, table_);
    w.u64(history_[0]);
    w.u64(history_[1]);
    w.u32(strand_);
}

void
GsharePredictor::load(snap::Reader &r)
{
    loadByteTable(r, table_);
    history_[0] = r.u64();
    history_[1] = r.u64();
    strand_ = r.u32();
}

void
TournamentPredictor::save(snap::Writer &w) const
{
    bimodal_.save(w);
    gshare_.save(w);
    saveByteTable(w, chooser_);
    w.b(lastBimodal_);
    w.b(lastGshare_);
}

void
TournamentPredictor::load(snap::Reader &r)
{
    bimodal_.load(r);
    gshare_.load(r);
    loadByteTable(r, chooser_);
    lastBimodal_ = r.b();
    lastGshare_ = r.b();
}

void
Btb::save(snap::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(entries_.size()));
    for (const Entry &e : entries_) {
        w.u64(e.tag);
        w.u64(e.target);
    }
}

void
Btb::load(snap::Reader &r)
{
    std::uint32_t n = r.u32();
    fatal_if(n != entries_.size(),
             "snapshot: BTB has %u entries, expected %zu "
             "(configuration mismatch)",
             n, entries_.size());
    for (Entry &e : entries_) {
        e.tag = r.u64();
        e.target = r.u64();
    }
}

void
ReturnAddressStack::save(snap::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(stack_.size()));
    for (std::uint64_t v : stack_)
        w.u64(v);
    w.u32(top_);
    w.u32(count_);
}

void
ReturnAddressStack::load(snap::Reader &r)
{
    std::uint32_t n = r.u32();
    fatal_if(n != stack_.size(),
             "snapshot: RAS depth %u, expected %zu (configuration "
             "mismatch)",
             n, stack_.size());
    for (std::uint64_t &v : stack_)
        v = r.u64();
    top_ = r.u32();
    count_ = r.u32();
}

} // namespace sst
