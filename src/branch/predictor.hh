/**
 * @file
 * Branch direction predictors, branch target buffer, and return-address
 * stack.
 *
 * SST leans on the branch predictor harder than a conventional pipeline:
 * a branch whose operands are NA cannot be resolved by the ahead strand
 * at all, so it is *predicted and deferred*, and a wrong prediction is
 * only discovered at DQ replay — costing a full checkpoint rollback.
 * bench_f11 sweeps predictor quality to expose that sensitivity.
 */

#ifndef SSTSIM_BRANCH_PREDICTOR_HH
#define SSTSIM_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace sst
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/** Direction predictor interface. PCs are instruction indices. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Serialize tables + history. load() assumes a predictor of the
     *  same kind and geometry (configuration is not serialized). */
    virtual void save(snap::Writer &) const {}
    virtual void load(snap::Reader &) {}

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(std::uint64_t pc) = 0;

    /** Train with the resolved direction (tables + history). */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /**
     * Train the tables only, without shifting global history. Used for
     * deferred branches, whose predicted direction was already shifted
     * into the history speculatively at predict time (see
     * shiftHistory); shifting again at verification would double-count.
     */
    virtual void train(std::uint64_t pc, bool taken)
    {
        update(pc, taken);
    }

    /**
     * Train the tables for a branch predicted under @p history (the
     * snapshot captured at prediction time). Indexed predictors must
     * hit the same entry the prediction read, or a repeatedly-wrong
     * deferred branch never converges. Default ignores the history.
     */
    virtual void trainAt(std::uint64_t pc, bool taken,
                         std::uint64_t /*history*/)
    {
        train(pc, taken);
    }

    /**
     * Speculatively shift a predicted direction into the global
     * history (real front ends do this at fetch). Rollback repairs it
     * via restoreHistory(). No-op for history-less predictors.
     */
    virtual void shiftHistory(bool /*taken*/) {}

    /**
     * Checkpoint/restore of speculative history (global history
     * registers); table state is left speculatively updated, as real
     * hardware does. Both act on the *active strand's* register when
     * per-strand history is enabled.
     */
    virtual std::uint64_t snapshotHistory() const { return 0; }
    virtual void restoreHistory(std::uint64_t) {}

    /**
     * Select the active global-history register. Strand 0 is the
     * committed (main) stream, strand 1 the SST ahead strand. A no-op
     * unless the predictor was built with strand-aware history, so
     * cores may call it unconditionally.
     */
    virtual void setStrand(unsigned /*strand*/) {}

    virtual const char *name() const = 0;

    /** Strand indices for setStrand(). */
    static constexpr unsigned mainStrand = 0;
    static constexpr unsigned aheadStrand = 1;
};

/** Always-predict-not-taken strawman. */
class StaticPredictor : public BranchPredictor
{
  public:
    bool predict(std::uint64_t) override { return false; }
    void update(std::uint64_t, bool) override {}
    const char *name() const override { return "static"; }
};

/** Classic 2-bit saturating counter table. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(unsigned tableBits = 12);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    const char *name() const override { return "bimodal"; }

    void save(snap::Writer &w) const override;
    void load(snap::Reader &r) override;

  private:
    unsigned index(std::uint64_t pc) const;
    std::vector<std::uint8_t> table_;
    unsigned mask_;
};

/**
 * Gshare: global history XOR pc indexing a 2-bit table. With
 * @p strandAware the predictor keeps one history register per strand
 * (main/ahead) over a shared table, so ahead-strand speculation does
 * not pollute the committed stream's history; setStrand() selects the
 * active register.
 */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(unsigned tableBits = 14,
                             unsigned historyBits = 12,
                             bool strandAware = false);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    void train(std::uint64_t pc, bool taken) override;
    void trainAt(std::uint64_t pc, bool taken,
                 std::uint64_t history) override;
    void shiftHistory(bool taken) override;
    std::uint64_t snapshotHistory() const override
    {
        return history_[strand_];
    }
    void restoreHistory(std::uint64_t h) override
    {
        history_[strand_] = h;
    }
    void setStrand(unsigned strand) override
    {
        strand_ = (strandAware_ && strand != 0) ? 1 : 0;
    }
    const char *name() const override { return "gshare"; }

    void save(snap::Writer &w) const override;
    void load(snap::Reader &r) override;

  private:
    unsigned index(std::uint64_t pc) const;
    std::vector<std::uint8_t> table_;
    unsigned mask_;
    std::uint64_t history_[2] = {0, 0};
    std::uint64_t historyMask_;
    unsigned strand_ = 0;
    bool strandAware_;
};

/** Tournament: bimodal vs gshare with a 2-bit chooser. */
class TournamentPredictor : public BranchPredictor
{
  public:
    TournamentPredictor(unsigned tableBits = 13, unsigned historyBits = 12,
                        bool strandAware = false);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    void train(std::uint64_t pc, bool taken) override;
    void trainAt(std::uint64_t pc, bool taken,
                 std::uint64_t history) override;
    void shiftHistory(bool taken) override;
    std::uint64_t snapshotHistory() const override;
    void restoreHistory(std::uint64_t h) override;
    void setStrand(unsigned strand) override
    {
        gshare_.setStrand(strand);
    }
    const char *name() const override { return "tournament"; }

    void save(snap::Writer &w) const override;
    void load(snap::Reader &r) override;

  private:
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<std::uint8_t> chooser_;
    unsigned mask_;
    bool lastBimodal_ = false;
    bool lastGshare_ = false;
};

/** All valid predictor kind names, for factories and CLI suggestions. */
const std::vector<std::string> &predictorNames();

/**
 * Construct a predictor by name ("static|bimodal|gshare|tournament").
 * Unknown kinds fatal() with a nearest-name suggestion. @p strandHistory
 * enables per-strand global-history registers (core.strand_history); it
 * is a no-op for history-less predictors.
 */
std::unique_ptr<BranchPredictor> makePredictor(const std::string &kind,
                                               bool strandHistory = false);

/**
 * Branch target buffer: maps branch PC to target PC for fetch redirect
 * before decode. Direct-mapped with tags.
 */
class Btb
{
  public:
    explicit Btb(unsigned entries = 4096);

    /** @return predicted target or invalid when not present. */
    std::uint64_t lookup(std::uint64_t pc) const;
    void update(std::uint64_t pc, std::uint64_t target);

    static constexpr std::uint64_t invalidTarget = ~std::uint64_t{0};

    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    struct Entry
    {
        std::uint64_t tag = ~std::uint64_t{0};
        std::uint64_t target = 0;
    };
    std::vector<Entry> entries_;
    unsigned mask_;
};

/** Return-address stack for JAL(link)/JALR(return) pairs. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 16);

    void push(std::uint64_t returnPc);
    /** Pop a prediction; returns invalid when empty. */
    std::uint64_t pop();
    /** True when pop() would return invalid (and leave the stack
     *  untouched). */
    bool empty() const { return count_ == 0; }
    void reset() { top_ = 0; count_ = 0; }

    static constexpr std::uint64_t invalidTarget = ~std::uint64_t{0};

    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    std::vector<std::uint64_t> stack_;
    unsigned top_ = 0;
    unsigned count_ = 0;
};

} // namespace sst

#endif // SSTSIM_BRANCH_PREDICTOR_HH
