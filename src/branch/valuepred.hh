/**
 * @file
 * Load-value predictor for the SST ahead strand.
 *
 * A load that misses the L1 normally parks its destination register as
 * NA and defers to the DQ; every dependent instruction then defers too,
 * and the ahead strand stalls once a second unresolved dependence (or a
 * deferred-branch mispredict) appears. Value prediction converts that
 * "defer to DQ" into "keep executing, verify on fill": a confident
 * prediction supplies the load's result speculatively, the dependents
 * run on, and the DQ replay of the load compares the filled value
 * against the prediction — a mismatch squashes the epoch back to its
 * checkpoint (FailKind::ValueMispredict), exactly like a deferred
 * branch discovered wrong at replay.
 *
 * Two classic schemes behind one table (Lipasti/Shen lineage):
 *  - last-value: predict the value the PC loaded last time;
 *  - stride:    predict lastValue + the last observed delta.
 * Predictions are gated by a 3-bit saturating confidence counter that
 * only arms after repeated agreement and collapses to zero on any
 * disagreement, so cold or chaotic PCs never speculate.
 *
 * The table trains in *replay order* (program order), but the ahead
 * strand asks for predictions at the frontier — typically several
 * dynamic instances of the PC past the last trained one, because every
 * in-flight deferred instance (predicted or not) sits between them.
 * Predicting lastValue + stride there is systematically wrong; the
 * entry instead tracks its **tip distance** — how many instances of
 * this PC are in flight — and extrapolates:
 *
 *     predicted = lastValue + (tipDistance + 1) * stride
 *
 * Every prediction and every unpredicted defer (notePendingDefer)
 * pushes the tip one instance further out; every replay-trained
 * instance (noteDeferResolved) pulls it back in. This is also what
 * lets a dependent chain of one static load (a linked-list walk) run
 * many nodes ahead of the first fill: each prediction of the chain is
 * simply one more instance of tip distance.
 *
 * Extrapolation is only sound when lastValue belongs to the live
 * stream. A rollback breaks that: the architectural stream rewinds,
 * in-flight instances die, and values trained from replays of the
 * discarded region lie in the *future* of the re-executed stream.
 * squash() therefore zeroes every tip distance and marks every entry
 * unanchored; an entry must train once more (needAnchor cleared)
 * before it may predict again.
 */

#ifndef SSTSIM_BRANCH_VALUEPRED_HH
#define SSTSIM_BRANCH_VALUEPRED_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sst
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/** Prediction scheme selected by core.value_pred. */
enum class ValuePredKind
{
    Off,       ///< never predict (default)
    LastValue, ///< predict the previous value loaded by this PC
    Stride     ///< predict lastValue + last observed delta
};

/** All valid core.value_pred values, for validation and suggestions. */
const std::vector<std::string> &valuePredNames();

/** Parse a core.value_pred value; fatal()s with a suggestion on an
 *  unknown name. */
ValuePredKind valuePredKindFromString(const std::string &name);

const char *valuePredKindName(ValuePredKind kind);

/**
 * Direct-mapped, tagged table of per-PC value histories with
 * confidence gating. Deterministic and snapshot-serializable: the
 * table participates in machine snapshots (and therefore in the
 * byte-equality gates for fastfwd, -j N CMP and sweep resume).
 */
class ValuePredictor
{
  public:
    explicit ValuePredictor(ValuePredKind kind = ValuePredKind::Off,
                            unsigned tableBits = 10);

    bool enabled() const { return kind_ != ValuePredKind::Off; }
    ValuePredKind kind() const { return kind_; }

    /**
     * Try to predict the value the load at @p pc is about to return.
     * @return true (and set @p value) only when the entry is hot, its
     * confidence has reached the speculation threshold, and it is
     * anchored to the live stream. The value is extrapolated across
     * the entry's tip distance, and a successful prediction pushes the
     * tip one further out so the next prediction of the same PC chains
     * past it.
     */
    bool predict(std::uint64_t pc, std::uint64_t &value);

    /**
     * Observe a resolved load value (any strand, replay included).
     * Trains last-value/stride state and moves confidence toward or
     * away from speculating on this PC.
     */
    void train(std::uint64_t pc, std::uint64_t value);

    /**
     * A load at @p pc deferred *without* a prediction: one more
     * in-flight instance between the last trained value and the
     * frontier, so predictions extrapolate one instance further.
     */
    void notePendingDefer(std::uint64_t pc);

    /** The replay of a deferred load at @p pc resolved (and trained):
     *  the tip is one instance closer to the trained value. */
    void noteDeferResolved(std::uint64_t pc);

    /**
     * Repair speculative state after an SST rollback: every in-flight
     * instance died with the discarded region (tip distances reset to
     * zero), and replay-trained values from that region may lie in the
     * future of the re-executed stream — so every entry must re-anchor
     * (train once) before predicting again.
     */
    void squash();

    void reset();

    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    struct Entry
    {
        std::uint64_t tag = ~std::uint64_t{0};
        std::uint64_t lastValue = 0;
        std::int64_t stride = 0;
        /** In-flight instances of this PC (deferred or predicted)
         *  between the last trained value and the frontier. */
        std::uint32_t tipDistance = 0;
        std::uint8_t confidence = 0;
        /** Set by squash(): suppress predictions until the next train
         *  proves the last value belongs to the live stream again. */
        bool needAnchor = false;
    };

    /** Confidence needed before a prediction is issued (of 0..7). */
    static constexpr std::uint8_t kConfident = 4;

    std::uint64_t predictedFor(const Entry &e) const;

    ValuePredKind kind_;
    std::vector<Entry> table_;
    unsigned mask_;
};

} // namespace sst

#endif // SSTSIM_BRANCH_VALUEPRED_HH
