#include "branch/valuepred.hh"

#include "common/config.hh"
#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst
{

const std::vector<std::string> &
valuePredNames()
{
    static const std::vector<std::string> names = {"off", "last",
                                                   "stride"};
    return names;
}

ValuePredKind
valuePredKindFromString(const std::string &name)
{
    if (name == "off")
        return ValuePredKind::Off;
    if (name == "last")
        return ValuePredKind::LastValue;
    if (name == "stride")
        return ValuePredKind::Stride;
    std::string msg = "unknown value predictor '" + name + "'";
    std::string near = closestMatch(name, valuePredNames());
    if (!near.empty())
        msg += "; did you mean '" + near + "'?";
    msg += " (core.value_pred=off|last|stride)";
    fatal("%s", msg.c_str());
}

const char *
valuePredKindName(ValuePredKind kind)
{
    switch (kind) {
      case ValuePredKind::Off:
        return "off";
      case ValuePredKind::LastValue:
        return "last";
      case ValuePredKind::Stride:
        return "stride";
    }
    return "?";
}

ValuePredictor::ValuePredictor(ValuePredKind kind, unsigned tableBits)
    : kind_(kind),
      table_(std::size_t{1} << tableBits),
      mask_((1u << tableBits) - 1)
{
}

std::uint64_t
ValuePredictor::predictedFor(const Entry &e) const
{
    if (kind_ == ValuePredKind::Stride)
        return e.lastValue + static_cast<std::uint64_t>(e.stride);
    return e.lastValue;
}

bool
ValuePredictor::predict(std::uint64_t pc, std::uint64_t &value)
{
    if (kind_ == ValuePredKind::Off)
        return false;
    Entry &e = table_[static_cast<unsigned>(pc) & mask_];
    if (e.tag != pc || e.confidence < kConfident || e.needAnchor)
        return false;
    // The frontier is tipDistance instances past the last trained
    // value (training happens in replay/program order; the ahead
    // strand runs ahead of it by every in-flight instance of this PC),
    // so extrapolate across the whole gap — predicting lastValue +
    // stride here would be systematically one-to-N instances stale.
    if (kind_ == ValuePredKind::Stride)
        value = e.lastValue
                + (e.tipDistance + 1)
                      * static_cast<std::uint64_t>(e.stride);
    else
        value = e.lastValue;
    ++e.tipDistance;
    return true;
}

void
ValuePredictor::train(std::uint64_t pc, std::uint64_t value)
{
    if (kind_ == ValuePredKind::Off)
        return;
    Entry &e = table_[static_cast<unsigned>(pc) & mask_];
    if (e.tag != pc) {
        e = Entry{};
        e.tag = pc;
        e.lastValue = value;
        return;
    }
    // Judge the value the predictor *would have* produced before this
    // observation, so confidence tracks real prediction accuracy.
    bool agreed = predictedFor(e) == value;
    if (agreed) {
        if (e.confidence < 7)
            ++e.confidence;
    } else {
        e.confidence = 0;
    }
    e.stride = static_cast<std::int64_t>(value - e.lastValue);
    e.lastValue = value;
    e.needAnchor = false;
}

void
ValuePredictor::notePendingDefer(std::uint64_t pc)
{
    if (kind_ == ValuePredKind::Off)
        return;
    Entry &e = table_[static_cast<unsigned>(pc) & mask_];
    if (e.tag != pc) {
        e = Entry{};
        e.tag = pc;
    }
    ++e.tipDistance;
}

void
ValuePredictor::noteDeferResolved(std::uint64_t pc)
{
    if (kind_ == ValuePredKind::Off)
        return;
    Entry &e = table_[static_cast<unsigned>(pc) & mask_];
    if (e.tag == pc && e.tipDistance > 0)
        --e.tipDistance;
}

void
ValuePredictor::squash()
{
    if (kind_ == ValuePredKind::Off)
        return;
    for (Entry &e : table_) {
        e.tipDistance = 0;
        e.needAnchor = true;
    }
}

void
ValuePredictor::reset()
{
    for (Entry &e : table_)
        e = Entry{};
}

void
ValuePredictor::save(snap::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(table_.size()));
    for (const Entry &e : table_) {
        w.u64(e.tag);
        w.u64(e.lastValue);
        w.u64(static_cast<std::uint64_t>(e.stride));
        w.u32(e.tipDistance);
        w.u8(e.confidence);
        w.u8(e.needAnchor ? 1 : 0);
    }
}

void
ValuePredictor::load(snap::Reader &r)
{
    std::uint32_t n = r.u32();
    fatal_if(n != table_.size(),
             "snapshot: value-predictor table has %u entries, expected "
             "%zu (configuration mismatch)",
             n, table_.size());
    for (Entry &e : table_) {
        e.tag = r.u64();
        e.lastValue = r.u64();
        e.stride = static_cast<std::int64_t>(r.u64());
        e.tipDistance = r.u32();
        e.confidence = r.u8();
        e.needAnchor = r.u8() != 0;
    }
}

} // namespace sst
