#include "svc/worker.hh"

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "common/logging.hh"
#include "common/result.hh"
#include "exp/runner.hh"
#include "exp/sweep.hh"
#include "fault/chaos.hh"
#include "svc/broker.hh"
#include "svc/channel.hh"
#include "svc/proto.hh"

namespace sst::svc
{

namespace
{

std::uint64_t
steadyMs()
{
    using namespace std::chrono;
    return static_cast<std::uint64_t>(
        duration_cast<milliseconds>(
            steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Run one leased job while heartbeating the broker. The simulation
 * runs on its own thread; the calling thread is the only socket
 * writer, sending a heartbeat every @p hbMs until the job finishes
 * (or the chaos monitor mutes us to simulate a hung worker).
 */
Result<void>
runLeased(int sock, const exp::SweepSpec &spec,
          const exp::JobSpec &job, const exp::SweepRunOptions &runOpts,
          ChaosMonitor &chaos, std::uint64_t hbMs)
{
    std::atomic<bool> running{true};
    exp::JobOutcome out;
    std::thread sim([&] {
        out = exp::runJob(spec, job, runOpts);
        running.store(false, std::memory_order_release);
    });

    std::uint64_t lastBeat = steadyMs();
    Result<void> sent;
    while (running.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        std::uint64_t now = steadyMs();
        if (now - lastBeat < hbMs)
            continue;
        lastBeat = now;
        if (chaos.muted())
            continue;
        sent = sendLine(sock,
                        heartbeatLine(job.index, chaos.lastObserved()));
        if (!sent.ok())
            break; // broker gone; finish the job, fail on result send
    }
    sim.join();
    return sendLine(sock, resultLine(job.index, out.recordJson));
}

} // namespace

int
runWorker(const WorkerOptions &options)
{
    std::signal(SIGPIPE, SIG_IGN);

    auto connected = connectUnix(options.socketPath);
    if (!connected.ok()) {
        warn("worker: %s", connected.error().message.c_str());
        return exit_code::svcFailure;
    }
    int sock = connected.value();
    LineReader reader(sock);
    std::string name = options.name.empty()
                           ? "w" + std::to_string(::getpid())
                           : options.name;

    auto fatalSocket = [&](const Error &e) {
        warn("worker %s: %s", name.c_str(), e.message.c_str());
        ::close(sock);
        return exit_code::svcFailure;
    };

    if (auto s = sendLine(sock, helloLine(name, ::getpid())); !s.ok())
        return fatalSocket(s.error());
    auto line = reader.readLine();
    if (!line.ok())
        return fatalSocket(line.error());
    auto msg = parseMessage(line.value());
    if (!msg.ok())
        return fatalSocket(msg.error());
    const Message welcome = msg.take();
    if (welcome.type != "welcome") {
        warn("worker %s: broker said '%s' instead of welcome: %s",
             name.c_str(), welcome.type.c_str(),
             welcome.error.c_str());
        ::close(sock);
        return exit_code::svcFailure;
    }

    // Identity check: both sides must expand the identical matrix, or
    // leased indices would name different jobs on each end.
    if (manifestHash(welcome.manifest) != welcome.manifestHash) {
        warn("worker %s: manifest hash mismatch (got %s, computed %s)",
             name.c_str(), welcome.manifestHash.c_str(),
             manifestHash(welcome.manifest).c_str());
        ::close(sock);
        return exit_code::badInput;
    }
    auto parsedSpec = exp::SweepSpec::parse(welcome.manifest,
                                            "broker manifest");
    if (!parsedSpec.ok()) {
        warn("worker %s: %s", name.c_str(),
             parsedSpec.error().message.c_str());
        ::close(sock);
        return exit_code::badInput;
    }
    const exp::SweepSpec spec = parsedSpec.take();
    const std::vector<exp::JobSpec> jobs = spec.expand();

    ChaosMonitor chaos;
    exp::SweepRunOptions runOpts;
    runOpts.jobs = 1;
    runOpts.artifactDir = welcome.artifactDir;
    runOpts.snapEvery = welcome.snapEvery;
    // Always resume: a re-leased job picks up the checkpoint its
    // previous worker left behind instead of restarting from cycle 0.
    runOpts.resume = true;
    runOpts.chaos = &chaos;
    std::uint64_t hbMs = options.heartbeatMs
                             ? options.heartbeatMs
                             : BrokerOptions{}.leaseTimeoutMs / 3;

    inform("worker %s: connected to %s (%zu jobs in matrix)",
           name.c_str(), options.socketPath.c_str(), jobs.size());

    for (;;) {
        if (auto s = sendLine(sock, leaseReqLine()); !s.ok())
            return fatalSocket(s.error());
        auto reply = reader.readLine();
        if (!reply.ok())
            return fatalSocket(reply.error());
        auto pm = parseMessage(reply.value());
        if (!pm.ok())
            return fatalSocket(pm.error());
        const Message m = pm.take();

        if (m.type == "done") {
            (void)sendLine(sock, goodbyeLine());
            ::close(sock);
            inform("worker %s: sweep done", name.c_str());
            return exit_code::ok;
        }
        if (m.type == "wait") {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min<std::uint64_t>(m.waitMs ? m.waitMs : 50,
                                        2000)));
            continue;
        }
        if (m.type == "error") {
            warn("worker %s: broker error: %s", name.c_str(),
                 m.error.c_str());
            ::close(sock);
            return exit_code::svcFailure;
        }
        if (m.type != "lease" || m.job >= jobs.size()) {
            warn("worker %s: unexpected broker message '%s'",
                 name.c_str(), m.type.c_str());
            ::close(sock);
            return exit_code::svcFailure;
        }

        const exp::JobSpec &job = jobs[m.job];
        inform("worker %s: leased job #%zu (%s/%s) attempt %u",
               name.c_str(), job.index, job.preset.c_str(),
               job.workload.c_str(), m.attempt);

        // A previous holder may have finished the record but died
        // before reporting it; reuse it rather than recompute.
        if (!runOpts.artifactDir.empty()) {
            std::ifstream in(
                exp::jobRecordPath(runOpts.artifactDir, job.index));
            if (in) {
                std::stringstream ss;
                ss << in.rdbuf();
                exp::JobOutcome prior;
                if (exp::outcomeFromRecord(job, ss.str(), prior)) {
                    if (auto s = sendLine(sock,
                                          resultLine(job.index,
                                                     prior.recordJson));
                        !s.ok())
                        return fatalSocket(s.error());
                    continue;
                }
            }
        }

        chaos.reset();
        if (options.chaosKillCycle
            && m.attempt == options.chaosKillAttempt)
            chaos.scheduleExit(options.chaosKillCycle, SIGKILL);
        if (options.chaosStallCycle
            && m.attempt == options.chaosStallAttempt)
            chaos.scheduleStall(options.chaosStallCycle,
                                options.chaosStallMs);

        if (auto s = runLeased(sock, spec, job, runOpts, chaos, hbMs);
            !s.ok())
            return fatalSocket(s.error());
    }
}

} // namespace sst::svc
