/**
 * @file
 * The sweep worker: connects to a broker, leases jobs, runs them and
 * streams results + heartbeats back.
 *
 * A worker owns no sweep state of its own — the manifest text arrives
 * in the broker's welcome message and the worker expands it locally,
 * proving agreement via the FNV hash in the welcome. That makes
 * workers stateless and freely joinable mid-sweep: `sstsim work
 * --socket S` against a running broker is always safe.
 *
 * Each leased job runs on a detached simulation thread while the main
 * thread heartbeats the broker; the ChaosMonitor attached to the job's
 * machine supplies the heartbeat's progress cycle and fires any
 * scheduled chaos (CLI-driven kill/stall for tests, config-carried
 * poison cycles) at its deterministic simulated cycle.
 */

#ifndef SSTSIM_SVC_WORKER_HH
#define SSTSIM_SVC_WORKER_HH

#include <cstdint>
#include <string>

namespace sst::svc
{

/** Worker configuration (CLI-shaped). */
struct WorkerOptions
{
    std::string socketPath;
    /** Name reported to the broker ("" derives one from the pid). */
    std::string name;
    /** Test chaos: kill this process (SIGKILL) at this simulated
     *  cycle of a leased job (0 = off)... */
    std::uint64_t chaosKillCycle = 0;
    /** ...but only when running the job's Nth lease attempt. With the
     *  default of 1 a respawned/other worker's retry (attempt 2) runs
     *  clean, so a single flag models "die once, then recover". */
    unsigned chaosKillAttempt = 1;
    /** Test chaos: stall (mute heartbeats + sleep chaosStallMs) at
     *  this simulated cycle, forcing a lease timeout (0 = off). */
    std::uint64_t chaosStallCycle = 0;
    unsigned chaosStallMs = 0;
    unsigned chaosStallAttempt = 1;
    /** Heartbeat period; 0 derives it from the broker lease timeout
     *  default (a third of it). */
    std::uint64_t heartbeatMs = 0;
};

/**
 * Run the worker loop until the broker reports the sweep done (exit
 * ok), the socket dies (svcFailure), or the welcome fails validation
 * (badInput). This is the whole body of `sstsim work`.
 */
int runWorker(const WorkerOptions &options);

} // namespace sst::svc

#endif // SSTSIM_SVC_WORKER_HH
