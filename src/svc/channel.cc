#include "svc/channel.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace sst::svc
{

namespace
{

Result<int>
unixSocket(const std::string &path, sockaddr_un &addr)
{
    if (path.size() >= sizeof(addr.sun_path))
        return Error{"socket path '" + path + "' exceeds the "
                     + std::to_string(sizeof(addr.sun_path) - 1)
                     + "-byte sun_path limit"};
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return Error{std::string("socket: ") + std::strerror(errno)};
    return fd;
}

} // namespace

Result<int>
listenUnix(const std::string &path)
{
    sockaddr_un addr;
    auto fd = unixSocket(path, addr);
    if (!fd.ok())
        return fd;
    ::unlink(path.c_str());
    if (::bind(fd.value(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr))
        != 0) {
        Error e{"bind '" + path + "': " + std::strerror(errno)};
        ::close(fd.value());
        return e;
    }
    if (::listen(fd.value(), 64) != 0) {
        Error e{"listen '" + path + "': " + std::strerror(errno)};
        ::close(fd.value());
        return e;
    }
    return fd;
}

Result<int>
connectUnix(const std::string &path)
{
    sockaddr_un addr;
    auto fd = unixSocket(path, addr);
    if (!fd.ok())
        return fd;
    if (::connect(fd.value(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        Error e{"connect '" + path + "': " + std::strerror(errno)};
        ::close(fd.value());
        return e;
    }
    return fd;
}

Result<void>
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        return Error{std::string("fcntl O_NONBLOCK: ")
                     + std::strerror(errno)};
    return Result<void>();
}

Result<void>
sendLine(int fd, const std::string &line)
{
    std::string framed = line + '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
        ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Peer is slow to drain; wait for writability rather than
            // spin. Protocol messages are small, so this is rare.
            pollfd p{fd, POLLOUT, 0};
            (void)::poll(&p, 1, 1000);
            continue;
        }
        return Error{std::string("write: ")
                     + (n == 0 ? "no progress" : std::strerror(errno))};
    }
    return Result<void>();
}

void
LineReader::split(std::vector<std::string> &out)
{
    std::size_t start = 0;
    for (;;) {
        std::size_t nl = buf_.find('\n', start);
        if (nl == std::string::npos)
            break;
        out.push_back(buf_.substr(start, nl - start));
        start = nl + 1;
    }
    buf_.erase(0, start);
}

Result<std::string>
LineReader::readLine()
{
    for (;;) {
        std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return line;
        }
        char chunk[4096];
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n == 0)
            return Error{"connection closed by peer"};
        return Error{std::string("read: ") + std::strerror(errno)};
    }
}

bool
LineReader::drain(std::vector<std::string> &out)
{
    for (;;) {
        char chunk[4096];
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            split(out);
            return true;
        }
        // EOF or hard error: hand over whatever is complete; a torn
        // trailing fragment (the peer died mid-write) is dropped.
        split(out);
        return false;
    }
}

} // namespace sst::svc
