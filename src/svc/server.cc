#include "svc/server.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "exp/runner.hh"
#include "svc/channel.hh"
#include "svc/proto.hh"

namespace sst::svc
{

namespace
{

std::uint64_t
steadyMs()
{
    using namespace std::chrono;
    return static_cast<std::uint64_t>(
        duration_cast<milliseconds>(
            steady_clock::now().time_since_epoch())
            .count());
}

/** One accepted worker connection. */
struct Conn
{
    int fd = -1;
    std::unique_ptr<LineReader> reader;
    int workerId = -1; ///< broker id once hello arrives
    std::string name;
    bool saidGoodbye = false;
};

/** One spawned (supervised) worker process slot. */
struct Spawned
{
    pid_t pid = -1;
    unsigned slot = 0; ///< stable log-file suffix across respawns
};

/**
 * Fork+exec one worker against @p options, with stderr appended to
 * "<artifactDir>/worker-<slot>.log". @return the child pid, -1 on
 * failure.
 */
pid_t
spawnWorker(const ServeOptions &options, unsigned slot)
{
    std::string exe = options.exePath.empty() ? "/proc/self/exe"
                                              : options.exePath;
    std::string logPath = options.artifactDir + "/worker-"
                          + std::to_string(slot) + ".log";
    std::string name = "w" + std::to_string(slot);

    std::vector<std::string> args = {exe,
                                     "work",
                                     "--socket",
                                     options.socketPath,
                                     "--name",
                                     name};
    for (const auto &extra : options.workerArgs)
        args.push_back(extra);

    pid_t pid = ::fork();
    if (pid != 0)
        return pid;

    // Child. Route diagnostics to the per-slot log (append: respawns
    // continue the same file; both streams — inform() uses stdout),
    // then become the worker.
    int logFd = ::open(logPath.c_str(),
                       O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (logFd >= 0) {
        ::dup2(logFd, 1);
        ::dup2(logFd, 2);
        ::close(logFd);
    }
    std::vector<char *> argv;
    for (auto &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(exe.c_str(), argv.data());
    std::fprintf(stderr, "exec '%s' failed: %s\n", exe.c_str(),
                 std::strerror(errno));
    ::_exit(127);
}

void
printScoreboard(const Scoreboard &b)
{
    std::printf("service scoreboard: %zu jobs | %zu resumed | "
                "%zu completed | %zu retries | %zu timeouts | "
                "%zu worker deaths | %zu quarantined\n",
                b.total, b.resumed, b.completed, b.retries, b.timeouts,
                b.workerDeaths, b.quarantined);
}

} // namespace

int
serveSweep(const exp::SweepSpec &spec, const std::string &manifestText,
           const ServeOptions &options)
{
    std::signal(SIGPIPE, SIG_IGN);

    if (options.artifactDir.empty()) {
        warn("serve: an artifact directory is required");
        return exit_code::usage;
    }
    std::error_code ec;
    std::filesystem::create_directories(options.artifactDir, ec);
    if (ec) {
        warn("serve: cannot create artifact directory '%s': %s",
             options.artifactDir.c_str(), ec.message().c_str());
        return exit_code::badInput;
    }
    if (spec.sample) {
        // Sampled sweeps share one snapshot-library cache across every
        // worker (exp::resolveProfileCache lands here for each of
        // them); create it up front so the first concurrent populators
        // only race on members, never on the directory itself.
        exp::SweepRunOptions probe;
        probe.artifactDir = options.artifactDir;
        std::string cache = exp::resolveProfileCache(spec, probe);
        std::filesystem::create_directories(cache, ec);
        if (ec)
            warn("serve: cannot create profile cache '%s': %s",
                 cache.c_str(), ec.message().c_str());
        else
            inform("serve: sampled sweep; shared profile cache at '%s'",
                   cache.c_str());
    }

    const std::vector<exp::JobSpec> jobs = spec.expand();
    exp::ResultSink sink(jobs.size());
    std::vector<char> done(jobs.size(), 0);
    if (options.resume)
        exp::loadFinishedRecords(jobs, options.artifactDir, sink, done);

    Broker broker(jobs, options.broker, sink, done);

    auto listening = listenUnix(options.socketPath);
    if (!listening.ok()) {
        warn("serve: %s", listening.error().message.c_str());
        return exit_code::svcFailure;
    }
    int listenFd = listening.value();

    std::vector<Spawned> children;
    // Respawn budget: enough that every job could burn its full
    // attempt budget on a fresh process, but still bounded so a
    // pathological crash loop terminates.
    std::size_t respawnsLeft =
        options.spawnWorkers
            ? options.spawnWorkers
                  + jobs.size() * options.broker.maxAttempts
            : 0;
    for (unsigned slot = 0; slot < options.spawnWorkers; ++slot) {
        if (respawnsLeft)
            --respawnsLeft;
        pid_t pid = spawnWorker(options, slot);
        if (pid < 0) {
            warn("serve: fork failed: %s", std::strerror(errno));
            continue;
        }
        children.push_back({pid, slot});
    }

    std::vector<Conn> conns;
    auto closeConn = [&](Conn &conn, std::uint64_t nowMs) {
        if (conn.workerId >= 0 && !conn.saidGoodbye)
            broker.workerLeft(conn.workerId, nowMs);
        ::close(conn.fd);
        conn.fd = -1;
    };

    bool infraFailed = false;
    std::uint64_t finishedAtMs = 0;
    // Grace window for workers to observe "done" and disconnect once
    // the sweep completes before the server force-closes them.
    const std::uint64_t graceMs = 5000;

    for (;;) {
        std::uint64_t now = steadyMs();
        broker.checkTimeouts(now);

        if (broker.finished() && !finishedAtMs)
            finishedAtMs = now;
        if (finishedAtMs
            && (conns.empty() || now - finishedAtMs > graceMs))
            break;

        // Reap exited children; respawn while there is still work.
        for (auto &child : children) {
            if (child.pid < 0)
                continue;
            int status = 0;
            pid_t r = ::waitpid(child.pid, &status, WNOHANG);
            if (r != child.pid)
                continue;
            child.pid = -1;
            if (WIFSIGNALED(status))
                inform("serve: worker slot %u killed by signal %d",
                       child.slot, WTERMSIG(status));
            if (!broker.finished() && respawnsLeft) {
                --respawnsLeft;
                pid_t pid = spawnWorker(options, child.slot);
                if (pid > 0) {
                    inform("serve: respawned worker slot %u",
                           child.slot);
                    child.pid = pid;
                }
            }
        }

        // A spawned-pool sweep with no live workers, no external
        // connections and no respawn budget left can never finish:
        // surface that instead of wedging.
        if (!broker.finished() && options.spawnWorkers
            && conns.empty() && !respawnsLeft
            && std::all_of(children.begin(), children.end(),
                           [](const Spawned &c) { return c.pid < 0; })) {
            warn("serve: worker pool exhausted with work remaining");
            infraFailed = true;
            break;
        }

        std::vector<pollfd> fds;
        fds.push_back({listenFd, POLLIN, 0});
        const std::size_t polled = conns.size();
        for (const Conn &conn : conns)
            fds.push_back({conn.fd, POLLIN, 0});

        std::uint64_t deadline = broker.nextDeadline(now);
        int timeout = 200;
        if (deadline > now)
            timeout = static_cast<int>(
                std::min<std::uint64_t>(deadline - now, 200));
        int ready = ::poll(fds.data(), fds.size(), timeout);
        if (ready < 0 && errno != EINTR) {
            warn("serve: poll: %s", std::strerror(errno));
            infraFailed = true;
            break;
        }
        now = steadyMs();

        if (fds[0].revents & POLLIN) {
            int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd >= 0) {
                if (auto nb = setNonBlocking(fd); !nb.ok()) {
                    warn("serve: %s", nb.error().message.c_str());
                    ::close(fd);
                } else {
                    Conn conn;
                    conn.fd = fd;
                    conn.reader = std::make_unique<LineReader>(fd);
                    conns.push_back(std::move(conn));
                }
            }
        }

        // `polled` caps the scan: a connection accepted above has no
        // pollfd entry this round.
        for (std::size_t c = 0; c < polled; ++c) {
            Conn &conn = conns[c];
            if (!(fds[c + 1].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            std::vector<std::string> lines;
            bool open = conn.reader->drain(lines);
            for (const std::string &line : lines) {
                auto pm = parseMessage(line);
                if (!pm.ok()) {
                    warn("serve: dropping connection: %s",
                         pm.error().message.c_str());
                    (void)sendLine(conn.fd,
                                   errorLine(pm.error().message));
                    open = false;
                    break;
                }
                const Message m = pm.take();
                if (m.type == "hello") {
                    conn.workerId = broker.workerJoined(
                        m.worker.empty() ? "anonymous" : m.worker, now);
                    conn.name = m.worker;
                    if (!options.quiet)
                        inform("serve: worker '%s' joined (pid %lld)",
                               conn.name.c_str(),
                               static_cast<long long>(m.pid));
                    (void)sendLine(
                        conn.fd,
                        welcomeLine(manifestText, options.artifactDir,
                                    options.snapEvery, true));
                } else if (conn.workerId < 0) {
                    (void)sendLine(conn.fd,
                                   errorLine("hello required first"));
                    open = false;
                    break;
                } else if (m.type == "lease_req") {
                    auto d = broker.lease(conn.workerId, now);
                    std::string reply =
                        d.kind == Broker::LeaseDecision::Kind::Grant
                            ? leaseLine(d.job, d.attempt)
                        : d.kind == Broker::LeaseDecision::Kind::Finished
                            ? doneLine()
                            : waitLine(d.waitMs);
                    (void)sendLine(conn.fd, reply);
                } else if (m.type == "heartbeat") {
                    broker.heartbeat(conn.workerId, m.job, now);
                } else if (m.type == "result") {
                    broker.result(conn.workerId, m.job, m.record, now);
                } else if (m.type == "fail") {
                    broker.fail(conn.workerId, m.job, m.error, now);
                } else if (m.type == "goodbye") {
                    conn.saidGoodbye = true;
                } else {
                    (void)sendLine(conn.fd,
                                   errorLine("unknown message type '"
                                             + m.type + "'"));
                }
            }
            if (!open)
                closeConn(conn, now);
        }
        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [](const Conn &conn) {
                                       return conn.fd < 0;
                                   }),
                    conns.end());
    }

    std::uint64_t now = steadyMs();
    for (Conn &conn : conns)
        closeConn(conn, now);
    ::close(listenFd);
    ::unlink(options.socketPath.c_str());

    // Give exiting children a moment, then make sure none outlive us.
    for (auto &child : children) {
        if (child.pid < 0)
            continue;
        int status = 0;
        for (int i = 0; i < 50; ++i) {
            if (::waitpid(child.pid, &status, WNOHANG) == child.pid) {
                child.pid = -1;
                break;
            }
            ::usleep(20'000);
        }
        if (child.pid >= 0) {
            ::kill(child.pid, SIGKILL);
            ::waitpid(child.pid, &status, 0);
        }
    }

    // Jobs that never completed (pool exhausted / early abort) still
    // get a record so the aggregate output names every job.
    if (infraFailed)
        for (std::size_t i = 0; i < jobs.size(); ++i)
            if (!sink.has(i))
                sink.tryRecord(exp::unrunOutcome(
                    jobs[i], "experiment service aborted before this "
                             "job could run"));

    if (!options.jsonPath.empty()) {
        std::ofstream out(options.jsonPath);
        if (!out) {
            warn("serve: cannot write '%s'", options.jsonPath.c_str());
            return exit_code::badInput;
        }
        out << exp::sweepJson(spec, sink);
        if (!options.quiet)
            std::printf("wrote %s (%zu records)\n",
                        options.jsonPath.c_str(),
                        sink.outcomes().size());
    }

    if (!options.quiet) {
        printScoreboard(broker.scoreboard());
        exp::aggregateTable(spec, sink).print();
        if (!spec.baseline.empty())
            exp::baselineTable(spec, sink).print();
    }

    return infraFailed ? exit_code::svcFailure : broker.exitCode();
}

} // namespace sst::svc
