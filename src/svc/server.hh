/**
 * @file
 * The broker's socket shell: accept loop, worker process management,
 * and the final scoreboard.
 *
 * serveSweep() wraps the pure Broker state machine (broker.hh) in a
 * poll()-driven Unix-socket server. It can run broker-only (workers
 * join externally via `sstsim work`) or spawn-and-supervise its own
 * worker pool (`sstsim sweep --distributed N`): spawned workers get
 * their stderr redirected to "<artifactDir>/worker-<slot>.log", are
 * reaped on exit, and are respawned — within a bounded budget — while
 * the sweep still has work, so a SIGKILLed worker costs one lease
 * retry, not the sweep.
 *
 * Crash-safety contract: every record is written to the artifact
 * directory by the worker that produced it (atomically, fsynced)
 * *before* it is reported over the socket, and in-flight jobs leave
 * periodic checkpoints. Killing any worker — or the whole service —
 * at any point therefore loses at most the work since the last
 * checkpoint, and a re-run with --resume (or a re-leased job) picks
 * up exactly where the artifacts say it stopped, producing
 * byte-identical aggregate output.
 */

#ifndef SSTSIM_SVC_SERVER_HH
#define SSTSIM_SVC_SERVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/sweep.hh"
#include "svc/broker.hh"

namespace sst::svc
{

/** Configuration of one serveSweep() invocation. */
struct ServeOptions
{
    std::string socketPath;
    /** Artifact directory (records, checkpoints, worker logs);
     *  required — the service is pointless without shared artifacts. */
    std::string artifactDir;
    std::uint64_t snapEvery = 0;
    /** Scan artifactDir for finished records before leasing. */
    bool resume = true;
    /** Worker processes to spawn and supervise (0 = external only). */
    unsigned spawnWorkers = 0;
    /** argv[0] to exec for spawned workers ("" = /proc/self/exe). */
    std::string exePath;
    /** Extra CLI args appended to every spawned worker's `work`
     *  command line (chaos flags in tests). */
    std::vector<std::string> workerArgs;
    /** Aggregate JSON output path ("" = none). */
    std::string jsonPath;
    bool quiet = false;
    BrokerOptions broker;
};

/**
 * Serve @p spec (whose manifest text is @p manifestText, shipped
 * verbatim to workers) until every job is Done or Quarantined.
 * @return the sweep exit code (quarantine folds in as
 * exit_code::quarantine, service infrastructure loss as svcFailure).
 */
int serveSweep(const exp::SweepSpec &spec,
               const std::string &manifestText,
               const ServeOptions &options);

} // namespace sst::svc

#endif // SSTSIM_SVC_SERVER_HH
