#include "svc/proto.hh"

#include <cstdio>

#include "common/stats.hh"
#include "exp/json.hh"
#include "snap/snap.hh"

namespace sst::svc
{

namespace
{

std::string
quoted(const std::string &s)
{
    return '"' + jsonEscape(s) + '"';
}

} // namespace

std::string
manifestHash(const std::string &text)
{
    snap::Hasher h;
    h.mix(text.data(), text.size());
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h.value()));
    return buf;
}

std::string
helloLine(const std::string &worker, std::int64_t pid)
{
    return "{\"type\":\"hello\",\"worker\":" + quoted(worker)
           + ",\"pid\":" + std::to_string(pid) + "}";
}

std::string
leaseReqLine()
{
    return "{\"type\":\"lease_req\"}";
}

std::string
heartbeatLine(std::size_t job, std::uint64_t cycle)
{
    return "{\"type\":\"heartbeat\",\"job\":" + std::to_string(job)
           + ",\"cycle\":" + std::to_string(cycle) + "}";
}

std::string
resultLine(std::size_t job, const std::string &record)
{
    return "{\"type\":\"result\",\"job\":" + std::to_string(job)
           + ",\"record\":" + quoted(record) + "}";
}

std::string
failLine(std::size_t job, const std::string &error)
{
    return "{\"type\":\"fail\",\"job\":" + std::to_string(job)
           + ",\"error\":" + quoted(error) + "}";
}

std::string
goodbyeLine()
{
    return "{\"type\":\"goodbye\"}";
}

std::string
welcomeLine(const std::string &manifest, const std::string &artifactDir,
            std::uint64_t snapEvery, bool resume)
{
    return "{\"type\":\"welcome\",\"manifest\":" + quoted(manifest)
           + ",\"manifest_hash\":" + quoted(manifestHash(manifest))
           + ",\"artifact_dir\":" + quoted(artifactDir)
           + ",\"snap_every\":" + std::to_string(snapEvery)
           + ",\"resume\":" + (resume ? "true" : "false") + "}";
}

std::string
leaseLine(std::size_t job, unsigned attempt)
{
    return "{\"type\":\"lease\",\"job\":" + std::to_string(job)
           + ",\"attempt\":" + std::to_string(attempt) + "}";
}

std::string
waitLine(std::uint64_t ms)
{
    return "{\"type\":\"wait\",\"ms\":" + std::to_string(ms) + "}";
}

std::string
doneLine()
{
    return "{\"type\":\"done\"}";
}

std::string
errorLine(const std::string &message)
{
    return "{\"type\":\"error\",\"message\":" + quoted(message) + "}";
}

Result<Message>
parseMessage(const std::string &line)
{
    auto parsed = exp::Json::parse(line);
    if (!parsed.ok())
        return Error{"svc message: " + parsed.error().message};
    const exp::Json &j = parsed.value();
    if (!j.isObject())
        return Error{"svc message: not a JSON object"};

    auto str = [&](const char *key) -> std::string {
        const exp::Json *v = j.find(key);
        return v && v->kind() == exp::Json::Kind::String
                   ? v->asString()
                   : std::string();
    };
    auto num = [&](const char *key) -> double {
        const exp::Json *v = j.find(key);
        return v && v->kind() == exp::Json::Kind::Number ? v->asNumber()
                                                         : 0.0;
    };
    auto boolean = [&](const char *key) {
        const exp::Json *v = j.find(key);
        return v && v->kind() == exp::Json::Kind::Bool && v->asBool();
    };

    Message m;
    m.type = str("type");
    if (m.type.empty())
        return Error{"svc message: missing \"type\""};
    m.worker = str("worker");
    m.pid = static_cast<std::int64_t>(num("pid"));
    m.job = static_cast<std::size_t>(num("job"));
    m.attempt = static_cast<unsigned>(num("attempt"));
    m.cycle = static_cast<std::uint64_t>(num("cycle"));
    m.waitMs = static_cast<std::uint64_t>(num("ms"));
    m.record = str("record");
    m.error = m.type == "error" ? str("message") : str("error");
    m.manifest = str("manifest");
    m.manifestHash = str("manifest_hash");
    m.artifactDir = str("artifact_dir");
    m.snapEvery = static_cast<std::uint64_t>(num("snap_every"));
    m.resume = boolean("resume");
    return m;
}

} // namespace sst::svc
