/**
 * @file
 * Minimal Unix-domain stream plumbing for the experiment service:
 * listen/connect helpers plus a buffered line reader that works in
 * both blocking (worker) and non-blocking (broker poll loop) mode.
 *
 * The service is strictly local — broker and workers share a
 * filesystem (artifacts, checkpoints) by design — so a Unix socket is
 * the whole transport. Note the sun_path limit (~107 bytes): callers
 * should keep socket paths short, e.g. under /tmp.
 */

#ifndef SSTSIM_SVC_CHANNEL_HH
#define SSTSIM_SVC_CHANNEL_HH

#include <string>
#include <vector>

#include "common/result.hh"

namespace sst::svc
{

/** Create, bind and listen on a Unix stream socket at @p path; any
 *  stale socket file is removed first. @return the listening fd. */
Result<int> listenUnix(const std::string &path);

/** Connect to the broker's socket. @return the connected fd. */
Result<int> connectUnix(const std::string &path);

/** Set O_NONBLOCK on @p fd (broker side of accepted connections). */
Result<void> setNonBlocking(int fd);

/** Write @p line plus a trailing newline, restarting on EINTR and
 *  partial writes. Blocks (briefly) even on non-blocking fds. */
Result<void> sendLine(int fd, const std::string &line);

/**
 * Per-connection receive buffer that reassembles newline-delimited
 * messages across arbitrary read() boundaries.
 */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /**
     * Blocking: read until one full line is available and return it
     * (newline stripped). Errors on EOF — in this protocol the peer
     * never half-closes mid-conversation.
     */
    Result<std::string> readLine();

    /**
     * Non-blocking: drain everything currently readable, appending
     * complete lines to @p out. @return false once the peer has hung
     * up (EOF or hard error) and the final buffered lines are drained.
     */
    bool drain(std::vector<std::string> &out);

  private:
    /** Pop complete lines off the front of buf_ into @p out. */
    void split(std::vector<std::string> &out);

    int fd_;
    std::string buf_;
};

} // namespace sst::svc

#endif // SSTSIM_SVC_CHANNEL_HH
