/**
 * @file
 * The sweep broker: owns the expanded job matrix and hands out leases.
 *
 * The broker is a *pure state machine* — it never touches sockets,
 * clocks or processes. Every entry point takes the current time in
 * milliseconds as a parameter, so unit tests drive it with a manual
 * clock and exercise lease expiry, retry backoff and quarantine
 * without sleeping. The socket server (server.hh) is a thin shell
 * that feeds it real time and real messages.
 *
 * Job lifecycle:
 *
 *            lease            result
 *   Pending ───────▶ Leased ─────────▶ Done
 *      ▲               │
 *      │ timeout /     │ attempts exhausted
 *      │ worker death  ▼
 *      └──────────  Quarantined
 *        (backoff)
 *
 * Attempts are counted at lease *grant*. A lease ends in exactly one
 * of: a result (Done), an explicit fail / worker death / heartbeat
 * timeout (back to Pending after an exponential backoff, or
 * Quarantined once the attempt budget is spent). Late results from a
 * worker whose lease was already reassigned are still accepted if the
 * job is not Done — work is deterministic, so the record is equally
 * valid no matter who produced it; a second result for a Done job is
 * ignored. Quarantined jobs produce a synthetic ran=false record so
 * the sweep's aggregate output stays complete.
 */

#ifndef SSTSIM_SVC_BROKER_HH
#define SSTSIM_SVC_BROKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.hh"
#include "exp/sweep.hh"

namespace sst::svc
{

/** Lease/retry policy knobs. */
struct BrokerOptions
{
    /** Lease expires this long after grant / last heartbeat. */
    std::uint64_t leaseTimeoutMs = 15'000;
    /** Lease grants per job before quarantine. */
    unsigned maxAttempts = 3;
    /** Exponential backoff before re-leasing a failed job:
     *  min(base * factor^(attempt-1), max). */
    std::uint64_t backoffBaseMs = 250;
    double backoffFactor = 2.0;
    std::uint64_t backoffMaxMs = 8'000;
};

/** Final tallies for the scoreboard. */
struct Scoreboard
{
    std::size_t total = 0;       ///< jobs in the matrix
    std::size_t resumed = 0;     ///< finished records found on disk
    std::size_t completed = 0;   ///< results received this run
    std::size_t retries = 0;     ///< lease grants beyond first attempts
    std::size_t quarantined = 0; ///< jobs that exhausted the budget
    std::size_t timeouts = 0;    ///< leases reclaimed by expiry
    std::size_t workerDeaths = 0;///< leases reclaimed by disconnect
};

class Broker
{
  public:
    /** What lease() decided. */
    struct LeaseDecision
    {
        enum class Kind
        {
            Grant,   ///< run `job` (attempt number in `attempt`)
            Wait,    ///< nothing leasable; ask again in `waitMs`
            Finished ///< every job is Done or Quarantined
        };
        Kind kind = Kind::Wait;
        std::size_t job = 0;
        unsigned attempt = 0;
        std::uint64_t waitMs = 0;
    };

    /**
     * @p jobs is the manifest expansion; @p done flags jobs already
     * finished on disk (from exp::loadFinishedRecords — their outcomes
     * must already be in @p sink). @p sink collects everything else as
     * results arrive. Both must outlive the broker.
     */
    Broker(const std::vector<exp::JobSpec> &jobs,
           const BrokerOptions &options, exp::ResultSink &sink,
           const std::vector<char> &done);

    /** A worker connected; @return its id for subsequent calls. */
    int workerJoined(const std::string &name, std::uint64_t nowMs);

    /** A worker disconnected or died; its lease (if any) is released
     *  for retry or quarantined. */
    void workerLeft(int worker, std::uint64_t nowMs);

    /** Grant work to @p worker (which must hold no live lease). */
    LeaseDecision lease(int worker, std::uint64_t nowMs);

    /** Keep-alive for @p worker's lease on @p job; ignored when the
     *  lease moved on (late heartbeat after a reassignment). */
    void heartbeat(int worker, std::size_t job, std::uint64_t nowMs);

    /**
     * A finished record arrived. Validates identity against the
     * manifest before accepting; a corrupt or mismatching record
     * counts as a failed attempt instead. Accepted records release
     * the lease and mark the job Done.
     */
    void result(int worker, std::size_t job, const std::string &record,
                std::uint64_t nowMs);

    /** The worker reports a recoverable per-job failure. */
    void fail(int worker, std::size_t job, const std::string &error,
              std::uint64_t nowMs);

    /** Expire overdue leases; call periodically. @return the number
     *  of leases reclaimed. */
    std::size_t checkTimeouts(std::uint64_t nowMs);

    /** True once every job is Done or Quarantined. */
    bool finished() const;

    /** Next deadline (lease expiry or backoff release) at or after
     *  @p nowMs, for the server's poll timeout; 0 when idle. */
    std::uint64_t nextDeadline(std::uint64_t nowMs) const;

    const Scoreboard &scoreboard() const { return board_; }

    /** Worst sweep exit code, folding quarantine in. */
    int exitCode() const;

  private:
    enum class JobState
    {
        Pending,
        Leased,
        Done,
        Quarantined
    };

    struct JobInfo
    {
        JobState state = JobState::Pending;
        unsigned attempts = 0;       ///< lease grants so far
        std::uint64_t notBeforeMs = 0; ///< backoff gate when Pending
        int owner = -1;              ///< worker id when Leased
        std::uint64_t deadlineMs = 0;  ///< lease expiry when Leased
        std::string lastError;       ///< most recent failure reason
    };

    /** Release job @p i's lease after a failure: back to Pending with
     *  backoff, or Quarantined when the budget is gone. */
    void releaseForRetry(std::size_t i, const std::string &why,
                         std::uint64_t nowMs);

    std::uint64_t backoffMs(unsigned attempts) const;

    const std::vector<exp::JobSpec> &jobs_;
    BrokerOptions options_;
    exp::ResultSink &sink_;
    std::vector<JobInfo> info_;
    std::vector<std::string> workerNames_;
    Scoreboard board_;
};

} // namespace sst::svc

#endif // SSTSIM_SVC_BROKER_HH
