#include "svc/broker.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sst::svc
{

Broker::Broker(const std::vector<exp::JobSpec> &jobs,
               const BrokerOptions &options, exp::ResultSink &sink,
               const std::vector<char> &done)
    : jobs_(jobs), options_(options), sink_(sink), info_(jobs.size())
{
    panic_if(done.size() != jobs.size(),
             "done vector sized %zu for %zu jobs", done.size(),
             jobs.size());
    panic_if(options_.maxAttempts == 0, "maxAttempts must be >= 1");
    board_.total = jobs.size();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (done[i]) {
            info_[i].state = JobState::Done;
            ++board_.resumed;
        }
    }
}

int
Broker::workerJoined(const std::string &name, std::uint64_t nowMs)
{
    (void)nowMs;
    workerNames_.push_back(name);
    return static_cast<int>(workerNames_.size()) - 1;
}

void
Broker::workerLeft(int worker, std::uint64_t nowMs)
{
    for (std::size_t i = 0; i < info_.size(); ++i) {
        if (info_[i].state == JobState::Leased
            && info_[i].owner == worker) {
            ++board_.workerDeaths;
            releaseForRetry(i, "worker '" + workerNames_[worker]
                                   + "' died holding the lease",
                            nowMs);
        }
    }
}

std::uint64_t
Broker::backoffMs(unsigned attempts) const
{
    double ms = static_cast<double>(options_.backoffBaseMs)
                * std::pow(options_.backoffFactor,
                           attempts > 0 ? attempts - 1 : 0);
    ms = std::min(ms, static_cast<double>(options_.backoffMaxMs));
    return static_cast<std::uint64_t>(ms);
}

void
Broker::releaseForRetry(std::size_t i, const std::string &why,
                        std::uint64_t nowMs)
{
    JobInfo &job = info_[i];
    job.owner = -1;
    job.deadlineMs = 0;
    job.lastError = why;
    if (job.attempts >= options_.maxAttempts) {
        job.state = JobState::Quarantined;
        ++board_.quarantined;
        std::string error = "quarantined after "
                            + std::to_string(job.attempts)
                            + " attempts; last failure: " + why;
        warn("job #%zu %s", jobs_[i].index, error.c_str());
        sink_.tryRecord(exp::unrunOutcome(jobs_[i], error));
        return;
    }
    job.state = JobState::Pending;
    job.notBeforeMs = nowMs + backoffMs(job.attempts);
}

Broker::LeaseDecision
Broker::lease(int worker, std::uint64_t nowMs)
{
    LeaseDecision d;
    if (finished()) {
        d.kind = LeaseDecision::Kind::Finished;
        return d;
    }
    // Lowest-index first keeps lease order deterministic given the
    // same request order, which makes the chaos tests reproducible.
    std::uint64_t earliest = 0;
    for (std::size_t i = 0; i < info_.size(); ++i) {
        JobInfo &job = info_[i];
        if (job.state != JobState::Pending)
            continue;
        if (job.notBeforeMs > nowMs) {
            if (!earliest || job.notBeforeMs < earliest)
                earliest = job.notBeforeMs;
            continue;
        }
        job.state = JobState::Leased;
        job.owner = worker;
        job.deadlineMs = nowMs + options_.leaseTimeoutMs;
        ++job.attempts;
        if (job.attempts > 1)
            ++board_.retries;
        d.kind = LeaseDecision::Kind::Grant;
        d.job = i;
        d.attempt = job.attempts;
        return d;
    }
    // Nothing leasable right now: either every remaining job is
    // leased elsewhere, or all pending ones sit in backoff.
    d.kind = LeaseDecision::Kind::Wait;
    d.waitMs = earliest > nowMs
                   ? earliest - nowMs
                   : std::max<std::uint64_t>(
                         options_.leaseTimeoutMs / 4, 50);
    return d;
}

void
Broker::heartbeat(int worker, std::size_t job, std::uint64_t nowMs)
{
    if (job >= info_.size())
        return;
    JobInfo &j = info_[job];
    if (j.state == JobState::Leased && j.owner == worker)
        j.deadlineMs = nowMs + options_.leaseTimeoutMs;
}

void
Broker::result(int worker, std::size_t job, const std::string &record,
               std::uint64_t nowMs)
{
    if (job >= info_.size()) {
        warn("result for job #%zu outside the matrix; ignored", job);
        return;
    }
    JobInfo &j = info_[job];
    if (j.state == JobState::Done)
        return; // duplicate/late result for finished work: harmless
    exp::JobOutcome out;
    std::string why;
    if (!exp::outcomeFromRecord(jobs_[job], record, out, &why)) {
        warn("worker sent an invalid record for job #%zu (%s)", job,
             why.c_str());
        if (j.state == JobState::Leased && j.owner == worker)
            releaseForRetry(job, "invalid record: " + why, nowMs);
        return;
    }
    // A late result from a reassigned (or quarantined) lease is as
    // good as any — jobs are deterministic.
    if (j.state == JobState::Quarantined)
        --board_.quarantined;
    j.state = JobState::Done;
    j.owner = -1;
    j.deadlineMs = 0;
    ++board_.completed;
    sink_.tryRecord(std::move(out));
}

void
Broker::fail(int worker, std::size_t job, const std::string &error,
             std::uint64_t nowMs)
{
    if (job >= info_.size())
        return;
    JobInfo &j = info_[job];
    if (j.state == JobState::Leased && j.owner == worker)
        releaseForRetry(job, error, nowMs);
}

std::size_t
Broker::checkTimeouts(std::uint64_t nowMs)
{
    std::size_t reclaimed = 0;
    for (std::size_t i = 0; i < info_.size(); ++i) {
        JobInfo &job = info_[i];
        if (job.state != JobState::Leased || job.deadlineMs > nowMs)
            continue;
        ++reclaimed;
        ++board_.timeouts;
        releaseForRetry(i, "lease timed out (no heartbeat from worker '"
                               + workerNames_[job.owner] + "')",
                        nowMs);
    }
    return reclaimed;
}

bool
Broker::finished() const
{
    for (const JobInfo &job : info_)
        if (job.state != JobState::Done
            && job.state != JobState::Quarantined)
            return false;
    return true;
}

std::uint64_t
Broker::nextDeadline(std::uint64_t nowMs) const
{
    std::uint64_t next = 0;
    auto consider = [&](std::uint64_t t) {
        if (t && (!next || t < next))
            next = t;
    };
    for (const JobInfo &job : info_) {
        if (job.state == JobState::Leased)
            consider(std::max(job.deadlineMs, nowMs));
        else if (job.state == JobState::Pending)
            consider(std::max(job.notBeforeMs, nowMs));
    }
    return next;
}

int
Broker::exitCode() const
{
    if (board_.quarantined)
        return exit_code::quarantine;
    return exp::sweepExitCode(sink_);
}

} // namespace sst::svc
