/**
 * @file
 * Wire protocol of the experiment service: newline-delimited JSON
 * objects over a local stream socket.
 *
 * One message per line, one JSON object per message, every message
 * carrying a "type" discriminator. Worker-originated types:
 *
 *   hello      {worker, pid}            first message after connect
 *   lease_req  {}                       ask for work
 *   heartbeat  {job, cycle}             lease keep-alive with progress
 *   result     {job, record}            finished record (verbatim text)
 *   fail       {job, error}             attempt failed, worker survives
 *   goodbye    {}                       clean disconnect
 *
 * Broker-originated types:
 *
 *   welcome    {manifest, manifest_hash, artifact_dir, snap_every,
 *               resume}                 reply to hello
 *   lease      {job, attempt}           work granted
 *   wait       {ms}                     nothing leasable yet; ask again
 *   done       {}                       sweep complete, worker may exit
 *   error      {message}                protocol violation; broker will
 *                                       drop the connection
 *
 * The job record travels as an escaped JSON *string*, not as an
 * embedded object: the broker must store the exact bytes the worker's
 * runJob produced, because the aggregate sweep JSON is byte-compared
 * against sequential runs. Re-serialising through a parser would be a
 * second source of truth for number formatting. The manifest text in
 * welcome travels the same way, paired with an FNV-1a 64 hash (hex
 * string — JSON numbers are doubles and cannot carry 64 bits) that the
 * worker recomputes to prove both sides expanded the same matrix.
 */

#ifndef SSTSIM_SVC_PROTO_HH
#define SSTSIM_SVC_PROTO_HH

#include <cstdint>
#include <string>

#include "common/result.hh"

namespace sst::svc
{

/** Union of all message fields; `type` says which are meaningful. */
struct Message
{
    std::string type;
    std::string worker;       ///< hello
    std::int64_t pid = 0;     ///< hello
    std::size_t job = 0;      ///< lease / heartbeat / result / fail
    unsigned attempt = 0;     ///< lease
    std::uint64_t cycle = 0;  ///< heartbeat
    std::uint64_t waitMs = 0; ///< wait
    std::string record;       ///< result (verbatim record bytes)
    std::string error;        ///< fail / error
    std::string manifest;     ///< welcome (verbatim manifest text)
    std::string manifestHash; ///< welcome (FNV-1a 64, hex)
    std::string artifactDir;  ///< welcome
    std::uint64_t snapEvery = 0; ///< welcome
    bool resume = false;         ///< welcome
};

/** FNV-1a 64 of @p text as a 16-digit hex string. */
std::string manifestHash(const std::string &text);

std::string helloLine(const std::string &worker, std::int64_t pid);
std::string leaseReqLine();
std::string heartbeatLine(std::size_t job, std::uint64_t cycle);
std::string resultLine(std::size_t job, const std::string &record);
std::string failLine(std::size_t job, const std::string &error);
std::string goodbyeLine();

std::string welcomeLine(const std::string &manifest,
                        const std::string &artifactDir,
                        std::uint64_t snapEvery, bool resume);
std::string leaseLine(std::size_t job, unsigned attempt);
std::string waitLine(std::uint64_t ms);
std::string doneLine();
std::string errorLine(const std::string &message);

/** Parse one message line (without trailing newline). */
Result<Message> parseMessage(const std::string &line);

} // namespace sst::svc

#endif // SSTSIM_SVC_PROTO_HH
