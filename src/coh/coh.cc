#include "coh/coh.hh"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst
{

CohAction
Directory::onAccess(Addr line, unsigned core, bool isStore)
{
    CohAction act;
    const std::uint64_t bit = std::uint64_t{1} << core;
    auto it = lines_.find(line);

    if (it == lines_.end()) {
        // Uncached: first touch goes straight to Exclusive (MESI E on a
        // read; no other copies exist, so no traffic either way).
        lines_[line] = CohLine{0, static_cast<int>(core)};
        return act;
    }

    CohLine &st = it->second;
    if (st.owner >= 0) {
        if (st.owner == static_cast<int>(core))
            return act; // silent E/M hit, and E->M is traffic-free
        // Another core owns the line: its copy may be dirty, so every
        // transfer is modelled as an intervention.
        act.intervention = true;
        act.latency += params_.interventionLatency;
        ++interventions_;
        if (isStore) {
            act.invalidateMask = std::uint64_t{1}
                                 << static_cast<unsigned>(st.owner);
            act.latency += params_.invalidateLatency;
            invalidations_ += 1;
            st = CohLine{0, static_cast<int>(core)};
        } else {
            st.sharers = (std::uint64_t{1}
                          << static_cast<unsigned>(st.owner))
                         | bit;
            st.owner = -1;
        }
        return act;
    }

    // Shared.
    if (!isStore) {
        st.sharers |= bit;
        return act;
    }
    std::uint64_t victims = st.sharers & ~bit;
    if (victims != 0) {
        act.invalidateMask = victims;
        act.latency += params_.invalidateLatency;
        invalidations_ +=
            static_cast<std::uint64_t>(std::popcount(victims));
    }
    if ((st.sharers & bit) != 0) {
        act.upgrade = true;
        act.latency += params_.upgradeLatency;
        ++upgrades_;
    }
    st = CohLine{0, static_cast<int>(core)};
    return act;
}

void
Directory::onEvict(Addr line, unsigned core)
{
    auto it = lines_.find(line);
    if (it == lines_.end())
        return;
    CohLine &st = it->second;
    const std::uint64_t bit = std::uint64_t{1} << core;
    if (st.owner == static_cast<int>(core))
        st.owner = -1;
    st.sharers &= ~bit;
    if (st.owner < 0 && st.sharers == 0)
        lines_.erase(it);
}

void
Directory::dropCore(unsigned core)
{
    const std::uint64_t bit = std::uint64_t{1} << core;
    for (auto it = lines_.begin(); it != lines_.end();) {
        CohLine &st = it->second;
        if (st.owner == static_cast<int>(core))
            st.owner = -1;
        st.sharers &= ~bit;
        if (st.owner < 0 && st.sharers == 0)
            it = lines_.erase(it);
        else
            ++it;
    }
}

CohLine
Directory::lineState(Addr line) const
{
    auto it = lines_.find(line);
    return it == lines_.end() ? CohLine{} : it->second;
}

void
Directory::save(snap::Writer &w) const
{
    w.tag("coh-dir");
    std::vector<Addr> keys;
    keys.reserve(lines_.size());
    for (const auto &kv : lines_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (Addr key : keys) {
        const CohLine &st = lines_.at(key);
        w.u64(key);
        w.u64(st.sharers);
        w.i32(st.owner);
    }
    w.u64(invalidations_);
    w.u64(interventions_);
    w.u64(upgrades_);
}

void
Directory::load(snap::Reader &r)
{
    r.tag("coh-dir");
    lines_.clear();
    std::uint64_t n = r.u64();
    lines_.reserve(n); // one rehash, not log2(n) incremental ones
    Addr prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr key = r.u64();
        fatal_if(i > 0 && key <= prev,
                 "snapshot: directory lines out of order");
        prev = key;
        CohLine st;
        st.sharers = r.u64();
        st.owner = r.i32();
        lines_.emplace(key, st);
    }
    invalidations_ = r.u64();
    interventions_ = r.u64();
    upgrades_ = r.u64();
}

} // namespace sst
