/**
 * @file
 * Invalidation-based MESI-style directory at the shared-L2 boundary.
 *
 * The simulator is timing-directed but functionally executed: data
 * always lives in the (shared) MemoryImage, never in the caches, so the
 * directory is purely a *timing and squash-signal* model. It tracks
 * which cores hold each line and answers, for every L1 access that
 * reaches the shared level, what coherence work the access implies:
 * invalidations of other sharers, an intervention (dirty-owner
 * transfer), or an upgrade (S -> M on a write hit). Functional values
 * are coherent by construction; what the directory adds is the latency
 * of that traffic and the invalidation signals that squash speculative
 * readers (speculative lock elision builds on exactly this signal).
 *
 * States per line, MESI collapsed to what a timing-only model needs:
 *  - Uncached: no core holds the line.
 *  - Exclusive(o): core o holds the only copy (E and M are
 *    indistinguishable here: data is never in the cache, so an E->M
 *    transition has no bus traffic to model).
 *  - Shared(mask): one or more cores hold read copies.
 */

#ifndef SSTSIM_COH_COH_HH
#define SSTSIM_COH_COH_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace sst
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/** Coherence knobs; disabled by default (private salted windows). */
struct CohParams
{
    bool enabled = false;
    /** Extra cycles to deliver an invalidation to each victim core. */
    unsigned invalidateLatency = 8;
    /** Extra cycles for a dirty-owner intervention (cache-to-cache). */
    unsigned interventionLatency = 16;
    /** Extra cycles for an S->M upgrade (ownership without data). */
    unsigned upgradeLatency = 6;
};

/**
 * Squash-side interface a core exposes to the coherence fabric.
 * A remote functional write to a line a core has speculatively read
 * invalidates the speculation; the port asks the core and, when the
 * line is in its read set, tells it to squash.
 */
class CohClient
{
  public:
    virtual ~CohClient() = default;
    /** Does the core's speculative read set cover @p line? */
    virtual bool specReadsLine(Addr line) const = 0;
    /** A remote write hit the speculative read set: roll back. */
    virtual void cohSquash() = 0;
};

/** What one coherence lookup decided. */
struct CohAction
{
    /** Cores whose L1 copy must be invalidated (bit per core). */
    std::uint64_t invalidateMask = 0;
    /** Dirty-owner intervention served the data. */
    bool intervention = false;
    /** Ownership upgrade of an already-shared line. */
    bool upgrade = false;
    /** Extra cycles the requesting access pays for the above. */
    unsigned latency = 0;
};

/** Per-line presence state (see file comment for the state model). */
struct CohLine
{
    std::uint64_t sharers = 0; ///< bit per core with a read copy
    int owner = -1;            ///< exclusive owner, -1 when none
};

/**
 * The directory proper. Lives in MemorySystem next to the L2; all
 * methods take line-aligned addresses.
 */
class Directory
{
  public:
    explicit Directory(const CohParams &params) : params_(params) {}

    /**
     * Record core @p core accessing @p line (write when @p isStore) and
     * return the implied coherence work. Pure state machine: no clock,
     * the caller folds CohAction::latency into its own timing.
     */
    CohAction onAccess(Addr line, unsigned core, bool isStore);

    /** Core @p core silently dropped @p line (eviction / flush). */
    void onEvict(Addr line, unsigned core);

    /** Forget every line @p core holds (whole-cache flush). */
    void dropCore(unsigned core);

    /** Presence state of @p line (Uncached when absent). */
    CohLine lineState(Addr line) const;

    std::uint64_t invalidations() const { return invalidations_; }
    std::uint64_t interventions() const { return interventions_; }
    std::uint64_t upgrades() const { return upgrades_; }

    /** Lines currently tracked (directory footprint metric). */
    std::size_t trackedLines() const { return lines_.size(); }

    /** Serialized sorted by line address: byte-stable across runs. */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    const CohParams params_;
    std::unordered_map<Addr, CohLine> lines_;
    std::uint64_t invalidations_ = 0;
    std::uint64_t interventions_ = 0;
    std::uint64_t upgrades_ = 0;
};

} // namespace sst

#endif // SSTSIM_COH_COH_HH
