#include "power/model.hh"

#include <cstring>

#include "common/logging.hh"

namespace sst
{

namespace
{

// --- structure cost weights (area units) ---
// One unit ~ a 64-entry single-ported RAM. Sources of the multipliers:
// CAM cell ~ 2x RAM cell plus match-line energy ~ 4x per search; rename
// map needs width*2 read + width write ports; checkpoint register files
// are plain RAM copies.
constexpr double ramUnitEntries = 64.0;
constexpr double camAreaFactor = 2.0;
constexpr double camEnergyFactor = 4.0;

double
ramArea(double entries, double ports)
{
    return (entries / ramUnitEntries) * (0.5 + 0.5 * ports);
}

double
camArea(double entries, double ports)
{
    return ramArea(entries, ports) * camAreaFactor;
}

} // namespace

PowerEstimate
estimatePower(Core &core)
{
    const CoreParams &p = core.params();
    const char *model = core.model();
    PowerEstimate est;

    auto flat = core.stats().flatten();
    auto stat = [&](const std::string &suffix) {
        for (const auto &kv : flat)
            if (kv.first.size() >= suffix.size()
                && kv.first.compare(kv.first.size() - suffix.size(),
                                    suffix.size(), suffix)
                       == 0)
                return kv.second;
        return 0.0;
    };

    est.cycles = static_cast<double>(core.cycles());
    est.insts = static_cast<double>(core.instsRetired());

    double w = p.fetchWidth;

    // Structures common to every model: base pipeline, regfile, bypass.
    est.areaItems["pipeline"] = 2.0 * w;
    est.areaItems["regfile"] = ramArea(numArchRegs, 2 * w + w);
    est.areaItems["bpred"] = 1.5;

    double committed = stat(".committed_insts");
    double loads = stat(".loads") + stat(".spec_loads");
    double stores = stat(".stores");

    // Baseline per-instruction pipe energy and per-access cache energy.
    est.dynamicEnergy += committed * 1.0;
    est.dynamicEnergy += (loads + stores) * 1.5;

    if (std::strcmp(model, "ooo") == 0) {
        // The expensive machinery SST eliminates.
        est.areaItems["rename_map"] =
            camArea(numArchRegs, 3 * w) + ramArea(p.robEntries, w);
        est.areaItems["rob"] = ramArea(p.robEntries, 2 * w);
        est.areaItems["issue_queue"] =
            camArea(p.issueQueueEntries, p.issueWidth) * 1.5;
        est.areaItems["lsq"] = camArea(p.lsqEntries, 2);
        est.areaItems["prf"] =
            ramArea(p.robEntries + numArchRegs, 2 * p.issueWidth);

        // Every dispatched instruction pays rename + ROB write + IQ
        // insert; every issued one pays a wakeup/select CAM search.
        est.dynamicEnergy += committed
                             * (1.0 + 1.0
                                + camEnergyFactor
                                      * (p.issueQueueEntries
                                         / ramUnitEntries));
        est.dynamicEnergy += (loads + stores) * camEnergyFactor
                             * (p.lsqEntries / ramUnitEntries);
    } else if (std::strcmp(model, "sst") == 0
               || std::strcmp(model, "scout") == 0) {
        // Checkpoint register files are plain RAM copies; the DQ and
        // SSQ are RAM FIFOs (the SSQ needs one search port for
        // forwarding, priced as a narrow CAM).
        est.areaItems["checkpoints"] =
            p.checkpoints * ramArea(numArchRegs, 1);
        est.areaItems["na_bits"] = 0.1 * p.checkpoints;
        if (!p.discardSpecWork) {
            est.areaItems["dq"] = ramArea(p.dqEntries, 2);
            est.areaItems["ssq"] = camArea(p.ssqEntries, 1);
        } else {
            est.areaItems["ssq"] = camArea(p.ssqEntries, 1);
        }

        double deferred = stat(".deferred_insts");
        double replayed = stat(".replayed_insts");
        double ckpts = stat(".checkpoints_taken");
        double discarded = stat(".discarded_insts");

        est.dynamicEnergy += deferred * 1.0;  // DQ write
        est.dynamicEnergy += replayed * 2.0;  // DQ read + execute
        est.dynamicEnergy += discarded * 1.0; // wasted ahead work
        est.dynamicEnergy += ckpts * (numArchRegs / ramUnitEntries);
        est.dynamicEnergy += (loads + stores) * camEnergyFactor
                             * (p.ssqEntries / ramUnitEntries);
    } else {
        // In-order: a small store buffer only.
        est.areaItems["store_buffer"] = ramArea(p.storeBufferEntries, 1);
    }

    for (const auto &kv : est.areaItems)
        est.coreArea += kv.second;

    // Static power scales with area; normalised so a core burning no
    // dynamic energy idles at area/20 units per cycle.
    est.staticPower = est.coreArea / 20.0;
    return est;
}

} // namespace sst
