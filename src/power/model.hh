/**
 * @file
 * Area and power proxy model.
 *
 * The paper's pitch is that SST reaches OoO-class single-thread
 * performance "without register renaming logic, reorder buffers, memory
 * disambiguation buffers, and large issue windows". This model prices
 * those structures so the efficiency tables (T8, F9) can be computed.
 *
 * Units are deliberately abstract: one area unit ~ the area of a simple
 * 64-entry RAM structure port; one energy unit ~ one RAM access. CAM
 * structures (issue queue wakeup, LSQ search, rename) carry documented
 * multipliers, following the conventional wisdom the paper leans on
 * (CAMs and multi-ported RAMs dominate OoO cost). Only *relative*
 * comparisons between core models are meaningful.
 */

#ifndef SSTSIM_POWER_MODEL_HH
#define SSTSIM_POWER_MODEL_HH

#include <map>
#include <string>

#include "common/stats.hh"
#include "core/core.hh"

namespace sst
{

/** Per-core area/power estimate. */
struct PowerEstimate
{
    double coreArea = 0;       ///< area units
    double staticPower = 0;    ///< proportional to area
    double dynamicEnergy = 0;  ///< total energy units over the run
    double cycles = 0;
    double insts = 0;

    double avgPower() const
    {
        return cycles > 0 ? staticPower + dynamicEnergy / cycles : 0.0;
    }
    double ipc() const { return cycles > 0 ? insts / cycles : 0.0; }
    /** Performance per watt (IPC / avg power). */
    double perfPerWatt() const
    {
        double p = avgPower();
        return p > 0 ? ipc() / p : 0.0;
    }
    /** Performance per area unit. */
    double perfPerArea() const
    {
        return coreArea > 0 ? ipc() / coreArea : 0.0;
    }

    /** Itemised area breakdown for the report tables. */
    std::map<std::string, double> areaItems;
};

/**
 * Estimate area and energy for a finished core run.
 *
 * @param core a core that has executed a workload (stats are read).
 * @return the populated estimate.
 */
PowerEstimate estimatePower(Core &core);

} // namespace sst

#endif // SSTSIM_POWER_MODEL_HH
