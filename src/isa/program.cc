#include "isa/program.hh"

#include <cstdio>

#include "common/logging.hh"

namespace sst
{

std::uint64_t
Program::append(const Inst &inst)
{
    insts_.push_back(inst);
    return insts_.size() - 1;
}

void
Program::patch(std::uint64_t pc, const Inst &inst)
{
    panic_if(pc >= insts_.size(), "patch: pc %llu out of range",
             static_cast<unsigned long long>(pc));
    insts_[pc] = inst;
}

const Inst &
Program::at(std::uint64_t pc) const
{
    panic_if(pc >= insts_.size(), "fetch past end of program (pc=%llu)",
             static_cast<unsigned long long>(pc));
    return insts_[pc];
}

void
Program::addData(Addr base, std::vector<std::uint8_t> bytes)
{
    segments_.push_back(Segment{base, std::move(bytes)});
}

void
Program::addWords(Addr base, const std::vector<std::uint64_t> &words)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(words.size() * 8);
    for (std::uint64_t w : words)
        for (int b = 0; b < 8; ++b)
            bytes.push_back(static_cast<std::uint8_t>(w >> (8 * b)));
    addData(base, std::move(bytes));
}

void
Program::addLabel(const std::string &name, std::uint64_t pc)
{
    labels_[name] = pc;
}

std::string
Program::listing() const
{
    // Invert the label map for annotation.
    std::map<std::uint64_t, std::string> byPc;
    for (const auto &kv : labels_)
        byPc[kv.second] = kv.first;

    std::string out = "; program: " + name_ + "\n";
    char buf[128];
    for (std::uint64_t pc = 0; pc < insts_.size(); ++pc) {
        auto lab = byPc.find(pc);
        if (lab != byPc.end())
            out += lab->second + ":\n";
        std::snprintf(buf, sizeof(buf), "  %6llu: %s\n",
                      static_cast<unsigned long long>(pc),
                      insts_[pc].toString().c_str());
        out += buf;
    }
    return out;
}

} // namespace sst
