/**
 * @file
 * Program container: static code plus initial data image.
 */

#ifndef SSTSIM_ISA_PROGRAM_HH
#define SSTSIM_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace sst
{

/**
 * A complete runnable image: code (indexed by instruction PC, where PC is
 * an instruction index, not a byte address) and initial data segments.
 * Instruction fetch timing converts PCs to byte addresses via codeBase so
 * the I-cache sees realistic spatial locality (8 bytes per instruction).
 */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** Append an instruction; @return its PC (index). */
    std::uint64_t append(const Inst &inst);

    /** Replace the instruction at @p pc (used for label back-patching). */
    void patch(std::uint64_t pc, const Inst &inst);

    const Inst &at(std::uint64_t pc) const;
    std::uint64_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }
    const std::vector<Inst> &insts() const { return insts_; }

    /** Initial data segment: @p bytes placed at absolute address @p base. */
    void addData(Addr base, std::vector<std::uint8_t> bytes);

    /** Convenience: place a vector of 64-bit words at @p base. */
    void addWords(Addr base, const std::vector<std::uint64_t> &words);

    struct Segment
    {
        Addr base;
        std::vector<std::uint8_t> bytes;
    };
    const std::vector<Segment> &segments() const { return segments_; }

    /** Byte address of the first instruction (for I-cache timing). */
    Addr codeBase() const { return codeBase_; }
    void setCodeBase(Addr base) { codeBase_ = base; }

    /** Byte address of the instruction at @p pc. */
    Addr instAddr(std::uint64_t pc) const { return codeBase_ + pc * 8; }

    /** Named label (diagnostics + assembler round trips). */
    void addLabel(const std::string &name, std::uint64_t pc);
    const std::map<std::string, std::uint64_t> &labels() const
    {
        return labels_;
    }

    /** Full disassembly listing. */
    std::string listing() const;

  private:
    std::string name_ = "anonymous";
    std::vector<Inst> insts_;
    std::vector<Segment> segments_;
    std::map<std::string, std::uint64_t> labels_;
    Addr codeBase_ = 0x100000;
};

} // namespace sst

#endif // SSTSIM_ISA_PROGRAM_HH
