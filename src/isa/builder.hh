/**
 * @file
 * Fluent programmatic assembler used by the workload generators.
 *
 * Builder wraps a Program and offers mnemonic-shaped methods plus
 * forward-label support, so a generator reads like assembly:
 *
 *   Builder b("loop");
 *   auto top = b.label("top");
 *   b.ld(3, 1, 0).addi(1, 3, 0).addi(2, 2, -1).bne(2, 0, "top").halt();
 */

#ifndef SSTSIM_ISA_BUILDER_HH
#define SSTSIM_ISA_BUILDER_HH

#include <map>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace sst
{

/** Incremental program builder with two-phase label resolution. */
class Builder
{
  public:
    explicit Builder(std::string name) : prog_(std::move(name)) {}

    /** Bind @p name to the current position; @return that PC. */
    std::uint64_t label(const std::string &name);

    /** Current instruction count (the PC the next emit will get). */
    std::uint64_t here() const { return prog_.size(); }

    // --- ALU ---
    Builder &add(RegId rd, RegId rs1, RegId rs2);
    Builder &sub(RegId rd, RegId rs1, RegId rs2);
    Builder &and_(RegId rd, RegId rs1, RegId rs2);
    Builder &or_(RegId rd, RegId rs1, RegId rs2);
    Builder &xor_(RegId rd, RegId rs1, RegId rs2);
    Builder &sll(RegId rd, RegId rs1, RegId rs2);
    Builder &srl(RegId rd, RegId rs1, RegId rs2);
    Builder &slt(RegId rd, RegId rs1, RegId rs2);
    Builder &sltu(RegId rd, RegId rs1, RegId rs2);
    Builder &mul(RegId rd, RegId rs1, RegId rs2);
    Builder &div(RegId rd, RegId rs1, RegId rs2);
    Builder &rem(RegId rd, RegId rs1, RegId rs2);
    Builder &fadd(RegId rd, RegId rs1, RegId rs2);
    Builder &fsub(RegId rd, RegId rs1, RegId rs2);
    Builder &fmul(RegId rd, RegId rs1, RegId rs2);
    Builder &fdiv(RegId rd, RegId rs1, RegId rs2);
    Builder &fcvtDL(RegId rd, RegId rs1);
    Builder &fcvtLD(RegId rd, RegId rs1);

    Builder &addi(RegId rd, RegId rs1, std::int32_t imm);
    Builder &andi(RegId rd, RegId rs1, std::int32_t imm);
    Builder &ori(RegId rd, RegId rs1, std::int32_t imm);
    Builder &xori(RegId rd, RegId rs1, std::int32_t imm);
    Builder &slli(RegId rd, RegId rs1, std::int32_t imm);
    Builder &srli(RegId rd, RegId rs1, std::int32_t imm);
    Builder &slti(RegId rd, RegId rs1, std::int32_t imm);
    Builder &lui(RegId rd, std::int32_t imm);

    /** Load a full 64-bit constant (expands to LUI/shift/or sequence). */
    Builder &li(RegId rd, std::int64_t value);

    // --- memory ---
    Builder &ld(RegId rd, RegId base, std::int32_t disp);
    Builder &lw(RegId rd, RegId base, std::int32_t disp);
    Builder &lb(RegId rd, RegId base, std::int32_t disp);
    Builder &st(RegId src, RegId base, std::int32_t disp);
    Builder &sw(RegId src, RegId base, std::int32_t disp);
    Builder &sb(RegId src, RegId base, std::int32_t disp);
    /** rd = M[base+disp]; M[base+disp] = src, atomically. */
    Builder &amoswap(RegId rd, RegId src, RegId base, std::int32_t disp);

    // --- control (label-targeted; forward references allowed) ---
    Builder &beq(RegId rs1, RegId rs2, const std::string &target);
    Builder &bne(RegId rs1, RegId rs2, const std::string &target);
    Builder &blt(RegId rs1, RegId rs2, const std::string &target);
    Builder &bge(RegId rs1, RegId rs2, const std::string &target);
    Builder &bltu(RegId rs1, RegId rs2, const std::string &target);
    Builder &bgeu(RegId rs1, RegId rs2, const std::string &target);
    Builder &jal(RegId rd, const std::string &target);
    Builder &jalr(RegId rd, RegId rs1, std::int32_t disp = 0);
    Builder &j(const std::string &target) { return jal(0, target); }

    Builder &nop();
    Builder &halt();

    /** Raw escape hatch. */
    Builder &emit(const Inst &inst);

    /** Attach an initial data segment. */
    Builder &data(Addr base, std::vector<std::uint8_t> bytes);
    Builder &words(Addr base, const std::vector<std::uint64_t> &words);

    /**
     * Resolve all pending label references and return the finished
     * program. Unresolved labels are fatal. The builder is consumed.
     */
    Program finish();

  private:
    Builder &ctrl(Opcode op, RegId rs1, RegId rs2, RegId rd,
                  const std::string &target);

    Program prog_;
    struct Fixup
    {
        std::uint64_t pc;
        std::string target;
    };
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace sst

#endif // SSTSIM_ISA_BUILDER_HH
