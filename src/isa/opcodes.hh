/**
 * @file
 * Opcode definitions and static instruction properties for the sstsim
 * RISC ISA.
 *
 * The ISA is a small 64-bit load/store architecture: 32 integer registers
 * (x0 hardwired to zero), register+immediate addressing, PC-relative
 * conditional branches, and a handful of long-latency operations (MUL,
 * DIV, FP) that exercise the SST deferral machinery the same way loads
 * do. SST itself is ISA-agnostic; this ISA exists so the simulator and
 * its workload generators are fully self-contained.
 */

#ifndef SSTSIM_ISA_OPCODES_HH
#define SSTSIM_ISA_OPCODES_HH

#include <cstdint>

namespace sst
{

/** Every architecturally visible operation. */
enum class Opcode : std::uint8_t
{
    // ALU register-register
    ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    // ALU register-immediate
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI,
    // Upper immediate
    LUI,
    // Long-latency integer
    MUL, DIV, REM,
    // Floating point (IEEE-754 double carried in integer registers)
    FADD, FSUB, FMUL, FDIV, FCVT_D_L, FCVT_L_D,
    // Memory (AMOSWAP atomically exchanges rs2 with M[rs1+imm])
    LD, LW, LB, ST, SW, SB, AMOSWAP,
    // Control
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    JAL, JALR,
    // Misc
    NOP, HALT,

    NumOpcodes
};

/** Coarse functional-unit class used by the timing models. */
enum class OpClass : std::uint8_t
{
    IntAlu,     ///< single-cycle integer
    IntMul,     ///< pipelined multiplier
    IntDiv,     ///< unpipelined divider
    FpAlu,      ///< FP add/sub/convert
    FpMul,      ///< FP multiply
    FpDiv,      ///< unpipelined FP divide
    Load,
    Store,
    Branch,     ///< conditional branch
    Jump,       ///< JAL/JALR
    Other       ///< NOP/HALT
};

/** Static decode information for one opcode. */
struct OpInfo
{
    const char *mnemonic;
    OpClass cls;
    /** Execution latency in cycles (Load uses the memory system). */
    unsigned latency;
    bool readsRs1;
    bool readsRs2;
    bool writesRd;
    bool hasImm;
};

/** @return the static properties of @p op (panics on bad opcode). */
const OpInfo &opInfo(Opcode op);

/** Convenience predicates. */
bool isLoad(Opcode op);
bool isStore(Opcode op);
bool isMem(Opcode op);
/** True for read-modify-write memory ops (currently AMOSWAP). */
bool isAtomic(Opcode op);
bool isCondBranch(Opcode op);
bool isJump(Opcode op);
bool isControl(Opcode op);
/** True for ops whose latency makes them SST deferral candidates. */
bool isLongLatency(Opcode op);

/** Memory access size in bytes for LD/ST-class ops (panics otherwise). */
unsigned memAccessSize(Opcode op);

/** Look up an opcode by mnemonic; returns NumOpcodes when unknown. */
Opcode opcodeFromMnemonic(const char *mnemonic);

} // namespace sst

#endif // SSTSIM_ISA_OPCODES_HH
