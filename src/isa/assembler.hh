/**
 * @file
 * Two-pass text assembler for the sstsim ISA.
 *
 * Syntax (one statement per line, ';' or '#' starts a comment):
 *
 *   label:
 *       add   x3, x1, x2        ; register-register
 *       addi  x3, x1, -16       ; register-immediate
 *       ld    x4, 8(x2)         ; load, disp(base)
 *       st    x4, 0(x2)         ; store
 *       beq   x1, x2, label     ; branches take label or numeric offset
 *       jal   x1, func
 *       li    x5, 0xdeadbeef    ; pseudo-op, expands via Builder::li
 *       mv    x5, x6            ; pseudo-op -> addi x5, x6, 0
 *       halt
 *   .data 0x2000                ; switch to data emission at address
 *   .word 1, 2, 3               ; 64-bit words
 *   .space 64                   ; zero bytes
 *   .text                       ; back to code
 */

#ifndef SSTSIM_ISA_ASSEMBLER_HH
#define SSTSIM_ISA_ASSEMBLER_HH

#include <string>

#include "common/result.hh"
#include "isa/program.hh"

namespace sst
{

/**
 * Assemble @p source into a Program named @p name. Syntax errors are
 * fatal (user error), with the offending line number in the message.
 */
Program assemble(const std::string &source,
                 const std::string &name = "asm");

/**
 * Recoverable assemble: syntax errors come back as an Error (with the
 * offending line number in the message) instead of exiting, so drivers
 * can report the diagnostic and keep control of their exit code.
 */
Result<Program> tryAssemble(const std::string &source,
                            const std::string &name = "asm");

} // namespace sst

#endif // SSTSIM_ISA_ASSEMBLER_HH
