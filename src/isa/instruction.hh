/**
 * @file
 * Static instruction representation, binary encode/decode, disassembly.
 */

#ifndef SSTSIM_ISA_INSTRUCTION_HH
#define SSTSIM_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace sst
{

/**
 * One static instruction. Branch/jump immediates are in units of
 * instructions relative to the branch's own index (PC-relative); memory
 * immediates are byte displacements off rs1.
 */
struct Inst
{
    Opcode op = Opcode::NOP;
    RegId rd = 0;
    RegId rs1 = 0;
    RegId rs2 = 0;
    std::int32_t imm = 0;

    bool operator==(const Inst &) const = default;

    /**
     * Pack into the 64-bit machine encoding:
     * [63:56] opcode, [55:50] rd, [49:44] rs1, [43:38] rs2,
     * [31:0] immediate (two's complement). Bits [37:32] are zero.
     */
    std::uint64_t encode() const;

    /** Inverse of encode(); panics on an illegal opcode field. */
    static Inst decode(std::uint64_t word);

    /** Human-readable disassembly ("add x3, x1, x2"). */
    std::string toString() const;
};

/** Factory helpers used by the Builder and by tests. */
namespace inst
{

Inst rrr(Opcode op, RegId rd, RegId rs1, RegId rs2);
Inst rri(Opcode op, RegId rd, RegId rs1, std::int32_t imm);
Inst load(Opcode op, RegId rd, RegId base, std::int32_t disp);
Inst store(Opcode op, RegId src, RegId base, std::int32_t disp);
Inst amoswap(RegId rd, RegId src, RegId base, std::int32_t disp);
Inst branch(Opcode op, RegId rs1, RegId rs2, std::int32_t rel);
Inst jal(RegId rd, std::int32_t rel);
Inst jalr(RegId rd, RegId rs1, std::int32_t disp);
Inst lui(RegId rd, std::int32_t imm);
Inst nop();
Inst halt();

} // namespace inst

} // namespace sst

#endif // SSTSIM_ISA_INSTRUCTION_HH
