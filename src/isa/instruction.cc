#include "isa/instruction.hh"

#include <cstdio>

#include "common/logging.hh"

namespace sst
{

std::uint64_t
Inst::encode() const
{
    std::uint64_t w = 0;
    w |= static_cast<std::uint64_t>(op) << 56;
    w |= static_cast<std::uint64_t>(rd & 0x3f) << 50;
    w |= static_cast<std::uint64_t>(rs1 & 0x3f) << 44;
    w |= static_cast<std::uint64_t>(rs2 & 0x3f) << 38;
    w |= static_cast<std::uint32_t>(imm);
    return w;
}

Inst
Inst::decode(std::uint64_t word)
{
    Inst i;
    auto opField = static_cast<unsigned>(word >> 56);
    panic_if(opField >= static_cast<unsigned>(Opcode::NumOpcodes),
             "decode: illegal opcode field %u", opField);
    i.op = static_cast<Opcode>(opField);
    i.rd = static_cast<RegId>((word >> 50) & 0x3f);
    i.rs1 = static_cast<RegId>((word >> 44) & 0x3f);
    i.rs2 = static_cast<RegId>((word >> 38) & 0x3f);
    i.imm = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(word & 0xffffffffULL));
    return i;
}

std::string
Inst::toString() const
{
    const OpInfo &info = opInfo(op);
    char buf[96];
    switch (info.cls) {
      case OpClass::Load:
        if (isAtomic(op))
            std::snprintf(buf, sizeof(buf), "%-8s x%u, x%u, %d(x%u)",
                          info.mnemonic, rd, rs2, imm, rs1);
        else
            std::snprintf(buf, sizeof(buf), "%-8s x%u, %d(x%u)",
                          info.mnemonic, rd, imm, rs1);
        break;
      case OpClass::Store:
        std::snprintf(buf, sizeof(buf), "%-8s x%u, %d(x%u)", info.mnemonic,
                      rs2, imm, rs1);
        break;
      case OpClass::Branch:
        std::snprintf(buf, sizeof(buf), "%-8s x%u, x%u, %+d",
                      info.mnemonic, rs1, rs2, imm);
        break;
      case OpClass::Jump:
        if (op == Opcode::JAL)
            std::snprintf(buf, sizeof(buf), "%-8s x%u, %+d", info.mnemonic,
                          rd, imm);
        else
            std::snprintf(buf, sizeof(buf), "%-8s x%u, x%u, %d",
                          info.mnemonic, rd, rs1, imm);
        break;
      default:
        if (!info.writesRd)
            std::snprintf(buf, sizeof(buf), "%s", info.mnemonic);
        else if (op == Opcode::LUI)
            std::snprintf(buf, sizeof(buf), "%-8s x%u, %d", info.mnemonic,
                          rd, imm);
        else if (info.hasImm)
            std::snprintf(buf, sizeof(buf), "%-8s x%u, x%u, %d",
                          info.mnemonic, rd, rs1, imm);
        else if (info.readsRs2)
            std::snprintf(buf, sizeof(buf), "%-8s x%u, x%u, x%u",
                          info.mnemonic, rd, rs1, rs2);
        else
            std::snprintf(buf, sizeof(buf), "%-8s x%u, x%u",
                          info.mnemonic, rd, rs1);
        break;
    }
    return buf;
}

namespace inst
{

Inst
rrr(Opcode op, RegId rd, RegId rs1, RegId rs2)
{
    return Inst{op, rd, rs1, rs2, 0};
}

Inst
rri(Opcode op, RegId rd, RegId rs1, std::int32_t imm)
{
    return Inst{op, rd, rs1, 0, imm};
}

Inst
load(Opcode op, RegId rd, RegId base, std::int32_t disp)
{
    panic_if(!isLoad(op), "load() with non-load opcode");
    return Inst{op, rd, base, 0, disp};
}

Inst
store(Opcode op, RegId src, RegId base, std::int32_t disp)
{
    panic_if(!isStore(op), "store() with non-store opcode");
    return Inst{op, 0, base, src, disp};
}

Inst
amoswap(RegId rd, RegId src, RegId base, std::int32_t disp)
{
    return Inst{Opcode::AMOSWAP, rd, base, src, disp};
}

Inst
branch(Opcode op, RegId rs1, RegId rs2, std::int32_t rel)
{
    panic_if(!isCondBranch(op), "branch() with non-branch opcode");
    return Inst{op, 0, rs1, rs2, rel};
}

Inst
jal(RegId rd, std::int32_t rel)
{
    return Inst{Opcode::JAL, rd, 0, 0, rel};
}

Inst
jalr(RegId rd, RegId rs1, std::int32_t disp)
{
    return Inst{Opcode::JALR, rd, rs1, 0, disp};
}

Inst
lui(RegId rd, std::int32_t imm)
{
    return Inst{Opcode::LUI, rd, 0, 0, imm};
}

Inst
nop()
{
    return Inst{};
}

Inst
halt()
{
    return Inst{Opcode::HALT, 0, 0, 0, 0};
}

} // namespace inst
} // namespace sst
