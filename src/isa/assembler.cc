#include "isa/assembler.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "isa/builder.hh"

namespace sst
{

namespace
{

/** Tokenized view of one source line. */
struct Line
{
    int number;
    std::string label;          // empty when absent
    std::string mnemonic;       // empty for label-only / blank lines
    std::vector<std::string> operands;
};

std::string
strip(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

Line
tokenize(const std::string &raw, int number)
{
    Line out;
    out.number = number;
    std::string text = raw;
    // Strip comments.
    for (char c : {';', '#'}) {
        auto pos = text.find(c);
        if (pos != std::string::npos)
            text = text.substr(0, pos);
    }
    text = strip(text);
    if (text.empty())
        return out;
    // Leading label?
    auto colon = text.find(':');
    if (colon != std::string::npos) {
        std::string head = strip(text.substr(0, colon));
        bool plain = !head.empty();
        for (char c : head)
            if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_'
                  || c == '.'))
                plain = false;
        if (plain) {
            out.label = head;
            text = strip(text.substr(colon + 1));
        }
    }
    if (text.empty())
        return out;
    // Mnemonic = first word.
    auto sp = text.find_first_of(" \t");
    out.mnemonic = text.substr(0, sp);
    if (sp != std::string::npos) {
        std::string rest = text.substr(sp + 1);
        std::string cur;
        for (char c : rest) {
            if (c == ',') {
                out.operands.push_back(strip(cur));
                cur.clear();
            } else {
                cur += c;
            }
        }
        cur = strip(cur);
        if (!cur.empty())
            out.operands.push_back(cur);
    }
    return out;
}

RegId
parseReg(const std::string &tok, int line)
{
    fatal_if(tok.size() < 2 || (tok[0] != 'x' && tok[0] != 'X'),
             "line %d: expected register, got '%s'", line, tok.c_str());
    char *end = nullptr;
    long v = std::strtol(tok.c_str() + 1, &end, 10);
    fatal_if(*end != '\0' || v < 0 || v >= static_cast<long>(numArchRegs),
             "line %d: bad register '%s'", line, tok.c_str());
    return static_cast<RegId>(v);
}

std::int64_t
parseImm(const std::string &tok, int line)
{
    char *end = nullptr;
    std::int64_t v = std::strtoll(tok.c_str(), &end, 0);
    fatal_if(end == tok.c_str() || *end != '\0',
             "line %d: bad immediate '%s'", line, tok.c_str());
    return v;
}

/** Parse "disp(base)" memory operand. */
void
parseMemOperand(const std::string &tok, int line, RegId &base,
                std::int32_t &disp)
{
    auto open = tok.find('(');
    auto close = tok.find(')');
    fatal_if(open == std::string::npos || close == std::string::npos
                 || close < open,
             "line %d: expected disp(base), got '%s'", line, tok.c_str());
    std::string dispStr = strip(tok.substr(0, open));
    disp = dispStr.empty()
               ? 0
               : static_cast<std::int32_t>(parseImm(dispStr, line));
    base = parseReg(strip(tok.substr(open + 1, close - open - 1)), line);
}

bool
isNumeric(const std::string &tok)
{
    if (tok.empty())
        return false;
    size_t i = (tok[0] == '-' || tok[0] == '+') ? 1 : 0;
    return i < tok.size()
           && std::isdigit(static_cast<unsigned char>(tok[i]));
}

} // namespace

Program
assemble(const std::string &source, const std::string &name)
{
    Builder b(name);
    std::istringstream in(source);
    std::string raw;
    int lineNo = 0;
    bool inData = false;
    Addr dataCursor = 0;

    while (std::getline(in, raw)) {
        ++lineNo;
        Line line = tokenize(raw, lineNo);
        if (!line.label.empty() && !inData)
            b.label(line.label);
        if (line.mnemonic.empty())
            continue;
        const std::string &m = line.mnemonic;
        const auto &ops = line.operands;
        auto expect = [&](size_t n) {
            fatal_if(ops.size() != n,
                     "line %d: '%s' expects %zu operands, got %zu", lineNo,
                     m.c_str(), n, ops.size());
        };

        // Directives.
        if (m == ".text") {
            inData = false;
            continue;
        }
        if (m == ".data") {
            expect(1);
            inData = true;
            dataCursor = static_cast<Addr>(parseImm(ops[0], lineNo));
            continue;
        }
        if (m == ".word") {
            fatal_if(!inData, "line %d: .word outside .data", lineNo);
            std::vector<std::uint64_t> ws;
            for (const auto &o : ops)
                ws.push_back(
                    static_cast<std::uint64_t>(parseImm(o, lineNo)));
            b.words(dataCursor, ws);
            dataCursor += ws.size() * 8;
            continue;
        }
        if (m == ".space") {
            fatal_if(!inData, "line %d: .space outside .data", lineNo);
            expect(1);
            auto n = static_cast<size_t>(parseImm(ops[0], lineNo));
            b.data(dataCursor, std::vector<std::uint8_t>(n, 0));
            dataCursor += n;
            continue;
        }
        fatal_if(inData, "line %d: instruction inside .data section",
                 lineNo);

        // Pseudo-ops.
        if (m == "li") {
            expect(2);
            b.li(parseReg(ops[0], lineNo), parseImm(ops[1], lineNo));
            continue;
        }
        if (m == "mv") {
            expect(2);
            b.addi(parseReg(ops[0], lineNo), parseReg(ops[1], lineNo), 0);
            continue;
        }
        if (m == "j") {
            expect(1);
            b.j(ops[0]);
            continue;
        }
        if (m == "ret") {
            expect(0);
            b.jalr(0, 1, 0);
            continue;
        }

        Opcode op = opcodeFromMnemonic(m.c_str());
        fatal_if(op == Opcode::NumOpcodes, "line %d: unknown mnemonic '%s'",
                 lineNo, m.c_str());
        const OpInfo &info = opInfo(op);

        switch (info.cls) {
          case OpClass::Load: {
            RegId base;
            std::int32_t disp;
            if (isAtomic(op)) {
                // amoswap rd, rs2, disp(base)
                expect(3);
                parseMemOperand(ops[2], lineNo, base, disp);
                b.emit(inst::amoswap(parseReg(ops[0], lineNo),
                                     parseReg(ops[1], lineNo), base, disp));
                break;
            }
            expect(2);
            parseMemOperand(ops[1], lineNo, base, disp);
            b.emit(inst::load(op, parseReg(ops[0], lineNo), base, disp));
            break;
          }
          case OpClass::Store: {
            expect(2);
            RegId base;
            std::int32_t disp;
            parseMemOperand(ops[1], lineNo, base, disp);
            b.emit(inst::store(op, parseReg(ops[0], lineNo), base, disp));
            break;
          }
          case OpClass::Branch: {
            expect(3);
            RegId r1 = parseReg(ops[0], lineNo);
            RegId r2 = parseReg(ops[1], lineNo);
            if (isNumeric(ops[2])) {
                b.emit(inst::branch(op, r1, r2,
                                    static_cast<std::int32_t>(
                                        parseImm(ops[2], lineNo))));
            } else {
                switch (op) {
                  case Opcode::BEQ: b.beq(r1, r2, ops[2]); break;
                  case Opcode::BNE: b.bne(r1, r2, ops[2]); break;
                  case Opcode::BLT: b.blt(r1, r2, ops[2]); break;
                  case Opcode::BGE: b.bge(r1, r2, ops[2]); break;
                  case Opcode::BLTU: b.bltu(r1, r2, ops[2]); break;
                  case Opcode::BGEU: b.bgeu(r1, r2, ops[2]); break;
                  default: panic("unhandled branch");
                }
            }
            break;
          }
          case OpClass::Jump: {
            if (op == Opcode::JAL) {
                expect(2);
                RegId rd = parseReg(ops[0], lineNo);
                if (isNumeric(ops[1]))
                    b.emit(inst::jal(rd, static_cast<std::int32_t>(
                                             parseImm(ops[1], lineNo))));
                else
                    b.jal(rd, ops[1]);
            } else {
                fatal_if(ops.size() < 2 || ops.size() > 3,
                         "line %d: jalr expects rd, rs1[, disp]", lineNo);
                std::int32_t disp =
                    ops.size() == 3 ? static_cast<std::int32_t>(
                        parseImm(ops[2], lineNo))
                                    : 0;
                b.jalr(parseReg(ops[0], lineNo), parseReg(ops[1], lineNo),
                       disp);
            }
            break;
          }
          case OpClass::Other:
            expect(0);
            b.emit(Inst{op, 0, 0, 0, 0});
            break;
          default: {
            // ALU forms.
            if (op == Opcode::LUI) {
                expect(2);
                b.lui(parseReg(ops[0], lineNo),
                      static_cast<std::int32_t>(parseImm(ops[1], lineNo)));
            } else if (info.hasImm) {
                expect(3);
                b.emit(inst::rri(op, parseReg(ops[0], lineNo),
                                 parseReg(ops[1], lineNo),
                                 static_cast<std::int32_t>(
                                     parseImm(ops[2], lineNo))));
            } else if (info.readsRs2) {
                expect(3);
                b.emit(inst::rrr(op, parseReg(ops[0], lineNo),
                                 parseReg(ops[1], lineNo),
                                 parseReg(ops[2], lineNo)));
            } else {
                expect(2);
                b.emit(inst::rrr(op, parseReg(ops[0], lineNo),
                                 parseReg(ops[1], lineNo), 0));
            }
            break;
          }
        }
    }
    return b.finish();
}

Result<Program>
tryAssemble(const std::string &source, const std::string &name)
{
    return trapFatal([&] { return assemble(source, name); });
}

} // namespace sst
