#include "isa/opcodes.hh"

#include <cstring>

#include "common/logging.hh"

namespace sst
{

namespace
{

// Table indexed by Opcode. Latencies follow the machine model in
// DESIGN.md: 1-cycle ALU, 4-cycle pipelined MUL, 20-cycle DIV,
// 4-cycle FP add/mul, 12-cycle FP divide.
const OpInfo table[] = {
    //               mnemonic  class             lat r1     r2     rd     imm
    /* ADD      */ {"add",     OpClass::IntAlu,   1, true,  true,  true,  false},
    /* SUB      */ {"sub",     OpClass::IntAlu,   1, true,  true,  true,  false},
    /* AND      */ {"and",     OpClass::IntAlu,   1, true,  true,  true,  false},
    /* OR       */ {"or",      OpClass::IntAlu,   1, true,  true,  true,  false},
    /* XOR      */ {"xor",     OpClass::IntAlu,   1, true,  true,  true,  false},
    /* SLL      */ {"sll",     OpClass::IntAlu,   1, true,  true,  true,  false},
    /* SRL      */ {"srl",     OpClass::IntAlu,   1, true,  true,  true,  false},
    /* SRA      */ {"sra",     OpClass::IntAlu,   1, true,  true,  true,  false},
    /* SLT      */ {"slt",     OpClass::IntAlu,   1, true,  true,  true,  false},
    /* SLTU     */ {"sltu",    OpClass::IntAlu,   1, true,  true,  true,  false},
    /* ADDI     */ {"addi",    OpClass::IntAlu,   1, true,  false, true,  true},
    /* ANDI     */ {"andi",    OpClass::IntAlu,   1, true,  false, true,  true},
    /* ORI      */ {"ori",     OpClass::IntAlu,   1, true,  false, true,  true},
    /* XORI     */ {"xori",    OpClass::IntAlu,   1, true,  false, true,  true},
    /* SLLI     */ {"slli",    OpClass::IntAlu,   1, true,  false, true,  true},
    /* SRLI     */ {"srli",    OpClass::IntAlu,   1, true,  false, true,  true},
    /* SRAI     */ {"srai",    OpClass::IntAlu,   1, true,  false, true,  true},
    /* SLTI     */ {"slti",    OpClass::IntAlu,   1, true,  false, true,  true},
    /* LUI      */ {"lui",     OpClass::IntAlu,   1, false, false, true,  true},
    /* MUL      */ {"mul",     OpClass::IntMul,   4, true,  true,  true,  false},
    /* DIV      */ {"div",     OpClass::IntDiv,  20, true,  true,  true,  false},
    /* REM      */ {"rem",     OpClass::IntDiv,  20, true,  true,  true,  false},
    /* FADD     */ {"fadd",    OpClass::FpAlu,    4, true,  true,  true,  false},
    /* FSUB     */ {"fsub",    OpClass::FpAlu,    4, true,  true,  true,  false},
    /* FMUL     */ {"fmul",    OpClass::FpMul,    4, true,  true,  true,  false},
    /* FDIV     */ {"fdiv",    OpClass::FpDiv,   12, true,  true,  true,  false},
    /* FCVT_D_L */ {"fcvt.d.l",OpClass::FpAlu,    4, true,  false, true,  false},
    /* FCVT_L_D */ {"fcvt.l.d",OpClass::FpAlu,    4, true,  false, true,  false},
    /* LD       */ {"ld",      OpClass::Load,     1, true,  false, true,  true},
    /* LW       */ {"lw",      OpClass::Load,     1, true,  false, true,  true},
    /* LB       */ {"lb",      OpClass::Load,     1, true,  false, true,  true},
    /* ST       */ {"st",      OpClass::Store,    1, true,  true,  false, true},
    /* SW       */ {"sw",      OpClass::Store,    1, true,  true,  false, true},
    /* SB       */ {"sb",      OpClass::Store,    1, true,  true,  false, true},
    /* AMOSWAP  */ {"amoswap", OpClass::Load,     1, true,  true,  true,  true},
    /* BEQ      */ {"beq",     OpClass::Branch,   1, true,  true,  false, true},
    /* BNE      */ {"bne",     OpClass::Branch,   1, true,  true,  false, true},
    /* BLT      */ {"blt",     OpClass::Branch,   1, true,  true,  false, true},
    /* BGE      */ {"bge",     OpClass::Branch,   1, true,  true,  false, true},
    /* BLTU     */ {"bltu",    OpClass::Branch,   1, true,  true,  false, true},
    /* BGEU     */ {"bgeu",    OpClass::Branch,   1, true,  true,  false, true},
    /* JAL      */ {"jal",     OpClass::Jump,     1, false, false, true,  true},
    /* JALR     */ {"jalr",    OpClass::Jump,     1, true,  false, true,  true},
    /* NOP      */ {"nop",     OpClass::Other,    1, false, false, false, false},
    /* HALT     */ {"halt",    OpClass::Other,    1, false, false, false, false},
};

static_assert(sizeof(table) / sizeof(table[0])
                  == static_cast<size_t>(Opcode::NumOpcodes),
              "opcode table out of sync with Opcode enum");

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<unsigned>(op);
    panic_if(idx >= static_cast<unsigned>(Opcode::NumOpcodes),
             "bad opcode %u", idx);
    return table[idx];
}

bool
isLoad(Opcode op)
{
    return opInfo(op).cls == OpClass::Load;
}

bool
isStore(Opcode op)
{
    return opInfo(op).cls == OpClass::Store;
}

bool
isMem(Opcode op)
{
    return isLoad(op) || isStore(op);
}

bool
isAtomic(Opcode op)
{
    return op == Opcode::AMOSWAP;
}

bool
isCondBranch(Opcode op)
{
    return opInfo(op).cls == OpClass::Branch;
}

bool
isJump(Opcode op)
{
    return opInfo(op).cls == OpClass::Jump;
}

bool
isControl(Opcode op)
{
    return isCondBranch(op) || isJump(op);
}

bool
isLongLatency(Opcode op)
{
    OpClass c = opInfo(op).cls;
    return c == OpClass::IntDiv || c == OpClass::FpDiv;
}

unsigned
memAccessSize(Opcode op)
{
    switch (op) {
      case Opcode::LD:
      case Opcode::ST:
      case Opcode::AMOSWAP:
        return 8;
      case Opcode::LW:
      case Opcode::SW:
        return 4;
      case Opcode::LB:
      case Opcode::SB:
        return 1;
      default:
        panic("memAccessSize on non-memory opcode %s", opInfo(op).mnemonic);
    }
}

Opcode
opcodeFromMnemonic(const char *mnemonic)
{
    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NumOpcodes);
         ++i) {
        if (std::strcmp(table[i].mnemonic, mnemonic) == 0)
            return static_cast<Opcode>(i);
    }
    return Opcode::NumOpcodes;
}

} // namespace sst
