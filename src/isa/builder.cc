#include "isa/builder.hh"

#include "common/logging.hh"

namespace sst
{

std::uint64_t
Builder::label(const std::string &name)
{
    prog_.addLabel(name, prog_.size());
    return prog_.size();
}

#define RRR(method, OP)                                                     \
    Builder &Builder::method(RegId rd, RegId rs1, RegId rs2)                \
    {                                                                       \
        prog_.append(inst::rrr(Opcode::OP, rd, rs1, rs2));                  \
        return *this;                                                       \
    }

RRR(add, ADD)
RRR(sub, SUB)
RRR(and_, AND)
RRR(or_, OR)
RRR(xor_, XOR)
RRR(sll, SLL)
RRR(srl, SRL)
RRR(slt, SLT)
RRR(sltu, SLTU)
RRR(mul, MUL)
RRR(div, DIV)
RRR(rem, REM)
RRR(fadd, FADD)
RRR(fsub, FSUB)
RRR(fmul, FMUL)
RRR(fdiv, FDIV)
#undef RRR

Builder &
Builder::fcvtDL(RegId rd, RegId rs1)
{
    prog_.append(inst::rrr(Opcode::FCVT_D_L, rd, rs1, 0));
    return *this;
}

Builder &
Builder::fcvtLD(RegId rd, RegId rs1)
{
    prog_.append(inst::rrr(Opcode::FCVT_L_D, rd, rs1, 0));
    return *this;
}

#define RRI(method, OP)                                                    \
    Builder &Builder::method(RegId rd, RegId rs1, std::int32_t imm)        \
    {                                                                      \
        prog_.append(inst::rri(Opcode::OP, rd, rs1, imm));                 \
        return *this;                                                      \
    }

RRI(addi, ADDI)
RRI(andi, ANDI)
RRI(ori, ORI)
RRI(xori, XORI)
RRI(slli, SLLI)
RRI(srli, SRLI)
RRI(slti, SLTI)
#undef RRI

Builder &
Builder::lui(RegId rd, std::int32_t imm)
{
    prog_.append(inst::lui(rd, imm));
    return *this;
}

Builder &
Builder::li(RegId rd, std::int64_t value)
{
    // LUI loads a sign-extended 32-bit immediate. Values that fit are one
    // instruction; otherwise build top-down in 16-bit positive chunks so
    // ORI's sign extension can never corrupt already-placed bits.
    if (value >= INT32_MIN && value <= INT32_MAX)
        return lui(rd, static_cast<std::int32_t>(value));
    lui(rd, static_cast<std::int32_t>(value >> 32));
    std::int32_t chunk1 =
        static_cast<std::int32_t>((value >> 16) & 0xffff);
    std::int32_t chunk0 = static_cast<std::int32_t>(value & 0xffff);
    slli(rd, rd, 16);
    if (chunk1 != 0)
        ori(rd, rd, chunk1);
    slli(rd, rd, 16);
    if (chunk0 != 0)
        ori(rd, rd, chunk0);
    return *this;
}

Builder &
Builder::ld(RegId rd, RegId base, std::int32_t disp)
{
    prog_.append(inst::load(Opcode::LD, rd, base, disp));
    return *this;
}

Builder &
Builder::lw(RegId rd, RegId base, std::int32_t disp)
{
    prog_.append(inst::load(Opcode::LW, rd, base, disp));
    return *this;
}

Builder &
Builder::lb(RegId rd, RegId base, std::int32_t disp)
{
    prog_.append(inst::load(Opcode::LB, rd, base, disp));
    return *this;
}

Builder &
Builder::st(RegId src, RegId base, std::int32_t disp)
{
    prog_.append(inst::store(Opcode::ST, src, base, disp));
    return *this;
}

Builder &
Builder::sw(RegId src, RegId base, std::int32_t disp)
{
    prog_.append(inst::store(Opcode::SW, src, base, disp));
    return *this;
}

Builder &
Builder::sb(RegId src, RegId base, std::int32_t disp)
{
    prog_.append(inst::store(Opcode::SB, src, base, disp));
    return *this;
}

Builder &
Builder::amoswap(RegId rd, RegId src, RegId base, std::int32_t disp)
{
    prog_.append(inst::amoswap(rd, src, base, disp));
    return *this;
}

Builder &
Builder::ctrl(Opcode op, RegId rs1, RegId rs2, RegId rd,
              const std::string &target)
{
    std::uint64_t pc = prog_.append(Inst{op, rd, rs1, rs2, 0});
    fixups_.push_back(Fixup{pc, target});
    return *this;
}

Builder &
Builder::beq(RegId rs1, RegId rs2, const std::string &t)
{
    return ctrl(Opcode::BEQ, rs1, rs2, 0, t);
}

Builder &
Builder::bne(RegId rs1, RegId rs2, const std::string &t)
{
    return ctrl(Opcode::BNE, rs1, rs2, 0, t);
}

Builder &
Builder::blt(RegId rs1, RegId rs2, const std::string &t)
{
    return ctrl(Opcode::BLT, rs1, rs2, 0, t);
}

Builder &
Builder::bge(RegId rs1, RegId rs2, const std::string &t)
{
    return ctrl(Opcode::BGE, rs1, rs2, 0, t);
}

Builder &
Builder::bltu(RegId rs1, RegId rs2, const std::string &t)
{
    return ctrl(Opcode::BLTU, rs1, rs2, 0, t);
}

Builder &
Builder::bgeu(RegId rs1, RegId rs2, const std::string &t)
{
    return ctrl(Opcode::BGEU, rs1, rs2, 0, t);
}

Builder &
Builder::jal(RegId rd, const std::string &t)
{
    return ctrl(Opcode::JAL, 0, 0, rd, t);
}

Builder &
Builder::jalr(RegId rd, RegId rs1, std::int32_t disp)
{
    prog_.append(inst::jalr(rd, rs1, disp));
    return *this;
}

Builder &
Builder::nop()
{
    prog_.append(inst::nop());
    return *this;
}

Builder &
Builder::halt()
{
    prog_.append(inst::halt());
    return *this;
}

Builder &
Builder::emit(const Inst &inst)
{
    prog_.append(inst);
    return *this;
}

Builder &
Builder::data(Addr base, std::vector<std::uint8_t> bytes)
{
    prog_.addData(base, std::move(bytes));
    return *this;
}

Builder &
Builder::words(Addr base, const std::vector<std::uint64_t> &ws)
{
    prog_.addWords(base, ws);
    return *this;
}

Program
Builder::finish()
{
    panic_if(finished_, "Builder::finish() called twice");
    finished_ = true;
    const auto &labels = prog_.labels();
    for (const auto &fix : fixups_) {
        auto it = labels.find(fix.target);
        fatal_if(it == labels.end(), "unresolved label '%s' in program %s",
                 fix.target.c_str(), prog_.name().c_str());
        Inst inst = prog_.at(fix.pc);
        inst.imm = static_cast<std::int32_t>(
            static_cast<std::int64_t>(it->second)
            - static_cast<std::int64_t>(fix.pc));
        prog_.patch(fix.pc, inst);
    }
    return std::move(prog_);
}

} // namespace sst
