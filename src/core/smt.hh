/**
 * @file
 * Dual-thread (CMT) core — the other way to use a ROCK core.
 *
 * Each ROCK core supports two hardware thread contexts. The SST paper's
 * pitch is that when a core runs a *single* thread, the second strand's
 * hardware (checkpointed registers, the extra pipeline) powers
 * simultaneous speculative threading instead of a second thread. This
 * model implements the baseline alternative: two independent in-order
 * contexts sharing one front end, one scoreboarded pipeline, one
 * divider, one store buffer and one L1/MSHR port. bench_f14 puts the
 * two philosophies head to head (thread-level vs memory-level
 * parallelism from the same silicon).
 *
 * Issue policy: round-robin priority alternates each cycle; a stalled
 * context donates its slots to the other (the property that makes SMT
 * attractive for miss-bound commercial workloads).
 */

#ifndef SSTSIM_CORE_SMT_HH
#define SSTSIM_CORE_SMT_HH

#include <array>
#include <deque>
#include <memory>

#include "branch/predictor.hh"
#include "common/stats.hh"
#include "core/core.hh"

namespace sst
{

/** Two-context in-order core over one CorePort. */
class SmtCore
{
  public:
    static constexpr unsigned numThreads = 2;

    /**
     * Each context runs its own program against its own memory image
     * (separate logical address spaces; the shared caches see them
     * under distinct physical salts, as a real core would via the TLB).
     */
    SmtCore(const CoreParams &params,
            std::array<const Program *, numThreads> programs,
            std::array<MemoryImage *, numThreads> memories,
            CorePort &port);

    SmtCore(const SmtCore &) = delete;
    SmtCore &operator=(const SmtCore &) = delete;

    /** Advance one cycle. */
    void tick();

    /** True when every context has halted. */
    bool halted() const;
    bool threadHalted(unsigned tid) const;

    Cycle cycles() const { return now_; }
    std::uint64_t instsRetired(unsigned tid) const;
    std::uint64_t totalInstsRetired() const;
    /** Aggregate IPC over both contexts. */
    double aggregateIpc() const;

    const ArchState &archState(unsigned tid) const;
    StatGroup &stats() { return stats_; }

    /** Attach a structured event ring (see Core::attachTraceBuffer). */
    void attachTraceBuffer(trace::TraceBuffer *buf) { traceBuf_ = buf; }

    /** Per-category cycle attribution; complete after the last tick()
     *  (SMT holds nothing pending, so no finalize step is needed). */
    trace::CpiStack &cpiStack() { return cpiStack_; }

    /** Serialize both contexts + shared pipeline state + stats tree
     *  (programs/memories stay bound; only execution state travels). */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    struct Context
    {
        const Program *program = nullptr;
        MemoryImage *memory = nullptr;
        ArchState arch;
        std::array<Cycle, numArchRegs> regReady{};
        Cycle frontEndReadyAt = 0;
        Addr lastFetchLine = invalidAddr;
        Cycle fetchLineReady = 0;
        Addr salt = 0;
        Scalar *committed = nullptr;
        std::unique_ptr<ReturnAddressStack> ras;
    };

    /** Try to issue one instruction from @p ctx. @return true on issue. */
    bool issueOne(Context &ctx);
    void drainStoreBuffer();
    Cycle fetchReady(Context &ctx);

    /** Record one structured event (no-op with SST_TRACE=0). */
    void record(trace::TraceKind kind, std::uint64_t pc, SeqNum seq = 0,
                std::uint32_t arg = 0)
    {
#if SST_TRACE
        if (traceBuf_)
            traceBuf_->record(trace::TraceEvent{
                now_, pc, seq, arg, kind, trace::TraceStrand::Main});
#else
        (void)kind; (void)pc; (void)seq; (void)arg;
#endif
    }

    /** First noted stall per cycle wins (see Core::noteStall). */
    void noteStall(trace::CpiCat cat)
    {
        if (stallCat_ == trace::CpiCat::Other)
            stallCat_ = cat;
    }

    CoreParams params_;
    CorePort &port_;
    Cycle now_ = 0;

    std::array<Context, numThreads> contexts_;

    /** Shared structures. */
    std::unique_ptr<BranchPredictor> predictor_;
    Btb btb_;
    Cycle divBusyUntil_ = 0;
    struct PendingStore
    {
        Addr addr;
        unsigned size;
        Cycle issuableAt;
    };
    std::deque<PendingStore> storeBuffer_;

    StatGroup stats_;
    trace::CpiStack cpiStack_{stats_};
    Scalar &cyclesStat_;
    Scalar &branches_;
    Scalar &mispredicts_;
    Scalar &slotConflictCycles_;
    trace::TraceBuffer *traceBuf_ = nullptr;
    trace::CpiCat stallCat_ = trace::CpiCat::Other;
};

} // namespace sst

#endif // SSTSIM_CORE_SMT_HH
