#include "core/sst.hh"

#include <algorithm>

#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst
{

SstCore::SstCore(const CoreParams &params, const Program &program,
                 MemoryImage &memory, CorePort &port)
    : Core(params, program, memory, port),
      dqCapacity_(params.dqEntries
                          > port.faults().params().dqSqueeze
                      ? params.dqEntries
                            - port.faults().params().dqSqueeze
                      : 1),
      ssqCapacity_(params.ssqEntries
                           > port.faults().params().ssqSqueeze
                       ? params.ssqEntries
                             - port.faults().params().ssqSqueeze
                       : 1),
      checkpointsTaken_(stats_.addScalar("checkpoints_taken",
                                         "speculation epochs opened")),
      epochsCommitted_(stats_.addScalar("epochs_committed",
                                        "epochs retired via replay")),
      fullCommits_(stats_.addScalar("full_commits",
                                    "speculation regions fully retired")),
      deferredInsts_(stats_.addScalar("deferred_insts",
                                      "instructions parked in the DQ")),
      replayedInsts_(stats_.addScalar("replayed_insts",
                                      "DQ entries executed by the "
                                      "behind strand")),
      redeferredInsts_(stats_.addScalar("redeferred_insts",
                                        "DQ entries deferred again "
                                        "during replay")),
      specLoads_(stats_.addScalar("spec_loads",
                                  "loads executed speculatively by the "
                                  "ahead strand")),
      failBranch_(stats_.addScalar("fail_branch",
                                   "rollbacks: deferred branch "
                                   "mispredicted")),
      failJump_(stats_.addScalar("fail_jump",
                                 "rollbacks: deferred indirect jump "
                                 "mispredicted")),
      failMem_(stats_.addScalar("fail_mem",
                                "rollbacks: load/store disambiguation "
                                "conflict")),
      failForced_(stats_.addScalar("fail_forced",
                                   "rollbacks: injected fault or "
                                   "watchdog degradation")),
      failCoh_(stats_.addScalar("fail_coh",
                                "rollbacks: remote write hit the "
                                "speculative read set")),
      failVpred_(stats_.addScalar("fail_vpred",
                                  "rollbacks: predicted load value "
                                  "wrong at fill verify")),
      vpPredictions_(stats_.addScalar("vp_predictions",
                                      "load values supplied by the "
                                      "value predictor")),
      vpCorrect_(stats_.addScalar("vp_correct",
                                  "value predictions verified correct "
                                  "at replay")),
      sleElisions_(stats_.addScalar("sle_elisions",
                                    "lock acquires executed past "
                                    "speculatively")),
      sleCommits_(stats_.addScalar("sle_commits",
                                   "elided critical sections committed "
                                   "atomically")),
      sleAborts_(stats_.addScalar("sle_aborts",
                                  "elisions abandoned (conflict, nested "
                                  "atomic, or forced rollback)")),
      scoutEnds_(stats_.addScalar("scout_ends",
                                  "scout regions ended by miss return")),
      livelockSuppressions_(
          stats_.addScalar("livelock_suppressions",
                           "trigger PCs forced non-speculative by the "
                           "rollback livelock guard")),
      watchdogDegrades_(stats_.addScalar("watchdog_degrades",
                                         "speculation regions abandoned "
                                         "at the watchdog's request")),
      dqFullStallCycles_(stats_.addScalar("dq_full_stalls",
                                          "ahead stalls: DQ full")),
      ssqFullStallCycles_(stats_.addScalar("ssq_full_stalls",
                                           "ahead stalls: SSQ full")),
      naJumpStallCycles_(stats_.addScalar("na_jump_stalls",
                                          "ahead stalls: unpredictable "
                                          "NA jump target")),
      branchThrottleStallCycles_(
          stats_.addScalar("branch_throttle_stalls",
                           "ahead stalls: deferred-branch limit")),
      aheadStallUseCycles_(stats_.addScalar("ahead_stall_use",
                                            "ahead stalls: operand not "
                                            "ready")),
      discardedInsts_(stats_.addScalar("discarded_insts",
                                       "speculative instructions thrown "
                                       "away by rollbacks")),
      dqOccDist_(stats_.addDist("dq_occupancy",
                                "deferred-queue entries while "
                                "speculating",
                                params.dqEntries + 1, 16)),
      epochInsts_(stats_.addDist("epoch_insts",
                                 "instructions committed per epoch",
                                 4096, 32))
{
    vpred_ = ValuePredictor(valuePredKindFromString(params.valuePred));
    fatal_if(params.checkpoints == 0, "SST needs at least one checkpoint");
    fatal_if(params.discardSpecWork && params.checkpoints != 1,
             "hardware-scout mode is single-checkpoint by definition");
    fatal_if(params.elideLocks && params.discardSpecWork,
             "lock elision needs committed speculative work; scout "
             "discards it");
    // Replay results live at most one DQ's worth of producers per epoch;
    // sizing the table up front keeps the publish/resolve hot path free
    // of rehash allocations.
    replayResults_.reserve(params.dqEntries * 2);
    port.setCohClient(this);
}

SstCore::~SstCore()
{
    port_.setCohClient(nullptr);
}

bool
SstCore::specReadsLine(Addr line) const
{
    if (epochs_.empty())
        return false;
    const unsigned lb = port_.l1d().params().lineBytes;
    for (const auto &ld : loadLog_) {
        if (ld.addr < line + lb && line < ld.addr + ld.size)
            return true;
    }
    return false;
}

void
SstCore::cohSquash()
{
    pendingCohSquash_ = true;
}

unsigned
SstCore::dqOccupancy() const
{
    unsigned n = 0;
    for (const auto &e : epochs_)
        n += static_cast<unsigned>(e.dq.size() + e.redeferred.size());
    return n;
}

std::uint64_t
SstCore::specMemRead(Addr addr, unsigned size, SeqNum before) const
{
    std::uint64_t v = memory_.read(addr, size);
    for (const auto &st : ssq_) {
        if (st.seq >= before)
            break;
        if (!st.resolved)
            continue;
        Addr lo = std::max(st.addr, addr);
        Addr hi = std::min(st.addr + st.size, addr + size);
        for (Addr a = lo; a < hi; ++a) {
            unsigned dst_sh = static_cast<unsigned>(a - addr) * 8;
            unsigned src_sh = static_cast<unsigned>(a - st.addr) * 8;
            std::uint64_t byte = (st.value >> src_sh) & 0xff;
            v = (v & ~(std::uint64_t{0xff} << dst_sh)) | (byte << dst_sh);
        }
    }
    return v;
}

void
SstCore::publishReplayValue(SeqNum seq, RegId rd, std::uint64_t value,
                            Cycle ready)
{
    if (rd == 0)
        return;
    if (na_[rd] && naWriter_[rd] == seq) {
        specRegs_[rd] = value;
        na_[rd] = false;
        naWriter_[rd] = 0;
        specReady_[rd] = ready;
    }
    for (auto &epoch : epochs_) {
        if (epoch.na[rd] && epoch.naWriter[rd] == seq) {
            epoch.regs[rd] = value;
            epoch.na[rd] = false;
            epoch.naWriter[rd] = 0;
        }
    }
}

void
SstCore::defer(DqEntry entry, bool reserve_ssq_slot)
{
    ++deferredInsts_;
    record(trace::TraceKind::Defer, trace::TraceStrand::Ahead, entry.pc,
           entry.seq);
    if (tracing())
        trace("DEFER seq=%llu pc=%llu %s",
              static_cast<unsigned long long>(entry.seq),
              static_cast<unsigned long long>(entry.pc),
              opInfo(entry.inst.op).mnemonic);
    if (params_.discardSpecWork)
        return; // scout: the parked work is simply dropped
    if (reserve_ssq_slot) {
        // Reserve the store's SSQ slot now so replay can never deadlock
        // on a full queue; the address is recorded when known so younger
        // loads can defer on the memory dependence instead of guessing.
        SsqEntry slot;
        slot.seq = entry.seq;
        slot.resolved = false;
        if (entry.src1.used && entry.src1.captured) {
            slot.addr = semantics::effectiveAddr(
                entry.inst, entry.src1.value);
            slot.size = memAccessSize(entry.inst.op);
        }
        ssq_.push_back(slot);
    }
    epochs_.back().dq.push_back(std::move(entry));
}

void
SstCore::resolveSsqPlaceholder(SeqNum seq, Addr addr, unsigned size,
                               std::uint64_t value)
{
    for (auto &st : ssq_) {
        if (st.seq == seq) {
            panic_if(st.resolved, "SSQ placeholder %llu already resolved",
                     static_cast<unsigned long long>(seq));
            st.resolved = true;
            st.addr = addr;
            st.size = size;
            st.value = value;
            return;
        }
    }
    panic("no SSQ placeholder for store seq %llu",
          static_cast<unsigned long long>(seq));
}

void
SstCore::drainSsqUpTo(SeqNum bound)
{
    auto it = ssq_.begin();
    while (it != ssq_.end() && it->seq < bound) {
        panic_if(!it->resolved,
                 "committing epoch with unresolved store seq %llu",
                 static_cast<unsigned long long>(it->seq));
        memory_.write(it->addr, it->value, it->size);
        storeBuffer_.push_back(PendingStore{it->addr, it->size, now_});
        ++storesExecuted_;
        record(trace::TraceKind::SsqDrain, trace::TraceStrand::Main,
               it->addr, it->seq, it->size);
        ++it;
    }
    ssq_.erase(ssq_.begin(), it);
}

void
SstCore::logSpecLoad(SeqNum seq, Addr addr, unsigned size)
{
    if (params_.lineGranularConflicts) {
        // s-bit style tracking: one bit per L1 line. Cheaper hardware,
        // but false sharing within a line forces spurious rollbacks.
        loadLog_.push_back(SpecLoad{seq, port_.l1d().lineAddr(addr),
                                    port_.l1d().params().lineBytes});
    } else {
        loadLog_.push_back(SpecLoad{seq, addr, size});
    }
}

bool
SstCore::storeConflicts(SeqNum store_seq, Addr addr,
                        unsigned size) const
{
    Addr lo_a = addr;
    Addr hi_a = addr + size;
    if (params_.lineGranularConflicts) {
        lo_a = addr & ~static_cast<Addr>(port_.l1d().params().lineBytes
                                         - 1);
        hi_a = lo_a + port_.l1d().params().lineBytes;
    }
    for (const auto &ld : loadLog_) {
        if (ld.seq <= store_seq)
            continue;
        Addr lo = std::max(ld.addr, lo_a);
        Addr hi = std::min(ld.addr + ld.size, hi_a);
        if (lo < hi)
            return true;
    }
    return false;
}

void
SstCore::drainStoreBuffer()
{
    if (storeBuffer_.empty())
        return;
    PendingStore &st = storeBuffer_.front();
    if (st.issuableAt > now_)
        return;
    auto res = port_.access(AccessType::Store, st.addr, now_);
    if (res.rejected) {
        st.issuableAt = res.retryCycle;
        return;
    }
    storeBuffer_.pop_front();
}

void
SstCore::cycle()
{
    if (pendingCohSquash_) {
        // Noted during a remote core's tick; the round-robin harness
        // guarantees nothing of ours ran in between, so the region that
        // read the line is still the live one.
        pendingCohSquash_ = false;
        if (!epochs_.empty())
            rollback(FailKind::CohConflict);
    }
    drainStoreBuffer();
    if (!epochs_.empty() && port_.faults().forceAbort())
        rollback(FailKind::Forced);
    if (epochs_.empty()) {
        normalCycle();
        // If this tick opened an episode, the pipeline state is fresh:
        // make the first speculating classify conservative.
        specProgress_ = true;
        return;
    }

    dqOccDist_.sample(dqOccupancy());
    unsigned behind_slots = 0;
    if (!params_.discardSpecWork) {
        behind_slots = aheadHalted_ ? params_.fetchWidth
                                    : std::max(1u, params_.fetchWidth / 2);
    }
    unsigned used = behind_slots ? replayStrand(behind_slots) : 0;
    unsigned ahead_issued = 0;
    if (!epochs_.empty()) {
        unsigned ahead_slots =
            params_.fetchWidth > used ? params_.fetchWidth - used : 0;
        ahead_issued = aheadStrand(ahead_slots);
    }
    specProgress_ = used > 0 || ahead_issued > 0;
    tryCommit();
}

Cycle
SstCore::nextWakeCycle() const
{
    idle_ = classifyIdle();
    return idle_.wake;
}

void
SstCore::idleAdvance(Cycle n)
{
    if (idle_.counter)
        *idle_.counter += n;
    if (!epochs_.empty()) {
        // Mirror the speculating tick: one DQ-occupancy sample and one
        // provisionally attributed cycle apiece (accountCycle() folds
        // every category except the queue-full pair into Replay).
        dqOccDist_.sample(dqOccupancy(), n);
        trace::CpiCat cat = (idle_.cat == trace::CpiCat::DqFull
                             || idle_.cat == trace::CpiCat::SsqFull)
                                ? idle_.cat
                                : (vpOutstanding_ > 0
                                       ? trace::CpiCat::ValuePred
                                       : trace::CpiCat::Replay);
        pendingSpec_[static_cast<std::size_t>(cat)] += n;
        return;
    }
    cpiStack_.add(idle_.cat, n);
}

Core::IdleClass
SstCore::classifyIdle() const
{
    IdleClass ic;
    if (pendingCohSquash_)
        return ic; // the squash rolls back state this cycle: act now
    if (arch_.halted) {
        ic.wake = kWakeNever;
        return ic;
    }
    Cycle wake = kWakeNever;

    // Store-buffer drain: a front entry due now probes the port (a real
    // event, possibly rejected); one due later bounds the skip.
    if (!storeBuffer_.empty()) {
        if (storeBuffer_.front().issuableAt <= now_)
            return ic; // kWakeNow
        wake = std::min(wake, storeBuffer_.front().issuableAt);
    }

    if (epochs_.empty()) {
        // ---- normal mode: the in-order ladder (normalIssueOne keeps
        // no per-cycle stall scalars, so only the CPI category matters).
        if (frontEndReadyAt_ > now_) {
            ic.wake = std::min(wake, frontEndReadyAt_);
            ic.cat = trace::CpiCat::Fetch;
            return ic;
        }
        std::uint64_t pc = arch_.pc;
        Addr line = port_.l1i().lineAddr(program_.instAddr(pc));
        if (line != lastFetchLine_)
            return ic; // new-line fetch probes the port: act now
        if (fetchLineReady_ > now_) {
            ic.wake = std::min(wake, fetchLineReady_);
            ic.cat = trace::CpiCat::Fetch;
            return ic;
        }
        const Inst &inst = program_.at(pc);
        const OpInfo &info = opInfo(inst.op);
        Cycle op_ready = 0;
        if (info.readsRs1 && inst.rs1 != 0)
            op_ready = std::max(op_ready, regReady_[inst.rs1]);
        if (info.readsRs2 && inst.rs2 != 0)
            op_ready = std::max(op_ready, regReady_[inst.rs2]);
        if (op_ready > now_) {
            bool coh = (info.readsRs1 && inst.rs1 != 0
                        && regReady_[inst.rs1] > now_ && regCoh_[inst.rs1])
                       || (info.readsRs2 && inst.rs2 != 0
                           && regReady_[inst.rs2] > now_
                           && regCoh_[inst.rs2]);
            ic.wake = std::min(wake, op_ready);
            ic.cat = coh ? trace::CpiCat::Coherence
                         : trace::CpiCat::UseStall;
            return ic;
        }
        if ((info.cls == OpClass::IntDiv || info.cls == OpClass::FpDiv)
            && divBusyUntil_ > now_) {
            ic.wake = std::min(wake, divBusyUntil_);
            ic.cat = trace::CpiCat::UseStall;
            return ic;
        }
        // Loads probe the port (and may enter speculation); anything
        // else issues: both are this-cycle actions.
        return ic;
    }

    // ---- speculating ----
    // With abort injection armed, every speculating cycle draws from
    // the fault RNG; skipping any would desynchronise the stream.
    if (port_.faults().params().forceAbortRate > 0)
        return ic;

    // An actively issuing or replaying episode (the common case while
    // scouting) acts every cycle; skip the per-strand analysis.
    if (specProgress_)
        return ic;

    if (params_.discardSpecWork) {
        // Scout: the region ends (rolls back) when the trigger returns.
        Cycle tr = epochs_.front().triggerReady;
        if (tr != 0) {
            if (tr <= now_)
                return ic;
            wake = std::min(wake, tr);
        }
    } else {
        // Behind strand: earliest cycle the front DQ entry can replay.
        // A pass swap or a re-deferral is a per-cycle state change, so
        // both classify as "act now".
        const Epoch &front = epochs_.front();
        if (front.dq.empty())
            return ic;
        const DqEntry &entry = front.dq.front();
        Cycle ready = now_;
        bool pending = false;
        auto resolve = [&](const DeferredOperand &op) {
            if (!op.used || op.captured)
                return;
            auto it = replayResults_.find(op.producer);
            if (it == replayResults_.end())
                pending = true;
            else
                ready = std::max(ready, it->second.readyCycle);
        };
        resolve(entry.src1);
        resolve(entry.src2);
        if (pending)
            return ic;
        if (entry.requestIssued)
            ready = std::max(ready, entry.readyCycle);
        if (ready <= now_)
            return ic; // replays (and possibly probes the port) now
        wake = std::min(wake, ready);
    }

    if (aheadHalted_) {
        ic.wake = wake;
        return ic;
    }

    // Ahead strand: mirror aheadIssueOne()'s first-failing condition.
    bool discard = params_.discardSpecWork;
    if (aheadFrontEndReadyAt_ > now_) {
        // No stall scalar on this path; the category stays Other
        // (folded into Replay while speculating).
        ic.wake = std::min(wake, aheadFrontEndReadyAt_);
        return ic;
    }
    std::uint64_t pc = aheadPc_;
    Addr line = port_.l1i().lineAddr(program_.instAddr(pc));
    if (line != lastFetchLine_)
        return ic; // new-line fetch probes the port: act now
    if (fetchLineReady_ > now_) {
        ic.wake = std::min(wake, fetchLineReady_);
        return ic;
    }

    const Inst &inst = program_.at(pc);
    const OpInfo &info = opInfo(inst.op);
    bool na1 = info.readsRs1 && inst.rs1 != 0 && na_[inst.rs1];
    bool na2 = info.readsRs2 && inst.rs2 != 0 && na_[inst.rs2];

    Cycle op_ready = 0;
    if (info.readsRs1 && !na1 && inst.rs1 != 0)
        op_ready = std::max(op_ready, specReady_[inst.rs1]);
    if (info.readsRs2 && !na2 && inst.rs2 != 0)
        op_ready = std::max(op_ready, specReady_[inst.rs2]);
    if (op_ready > now_) {
        ic.counter = &aheadStallUseCycles_;
        ic.cat = trace::CpiCat::UseStall;
        ic.wake = std::min(wake, op_ready);
        return ic;
    }
    if ((info.cls == OpClass::IntDiv || info.cls == OpClass::FpDiv)
        && aheadDivBusyUntil_ > now_) {
        ic.counter = &aheadStallUseCycles_;
        ic.cat = trace::CpiCat::UseStall;
        ic.wake = std::min(wake, aheadDivBusyUntil_);
        return ic;
    }

    if (isAtomic(inst.op)) {
        // Inside an elision the nested atomic aborts it this cycle;
        // otherwise a barrier stall until the region drains and commits
        // (bounded by the replay-strand wake above).
        if (sleActive_)
            return ic;
        ic.counter = &aheadStallUseCycles_;
        ic.cat = trace::CpiCat::UseStall;
        ic.wake = wake;
        return ic;
    }

    if (na1 || na2) {
        // ---- deferral path; the queue-full stalls release through
        // replay/commit progress the strand analysis above bounds. ----
        if (!discard && dqOccupancy() >= dqCapacity_) {
            ic.counter = &dqFullStallCycles_;
            ic.cat = trace::CpiCat::DqFull;
            ic.wake = wake;
            return ic;
        }
        if (isStore(inst.op) && ssqOccupancy() >= ssqCapacity_) {
            ic.counter = &ssqFullStallCycles_;
            ic.cat = trace::CpiCat::SsqFull;
            ic.wake = wake;
            return ic;
        }
        if (inst.op == Opcode::JALR) {
            bool is_return =
                inst.rd == 0 && inst.rs1 == 1 && inst.imm == 0;
            if (!is_return || ras_.empty()) {
                // Unpredictable target: a pure stall until replay
                // resolves the register.
                ic.counter = &naJumpStallCycles_;
                ic.wake = wake;
                return ic;
            }
            if (params_.maxDeferredBranches != 0
                && unverifiedBranches_ >= params_.maxDeferredBranches) {
                ic.counter = &branchThrottleStallCycles_;
                ic.wake = wake;
                return ic;
            }
            return ic; // defers (pops the RAS) this cycle
        }
        if (isCondBranch(inst.op) && params_.maxDeferredBranches != 0
            && unverifiedBranches_ >= params_.maxDeferredBranches) {
            ic.counter = &branchThrottleStallCycles_;
            ic.wake = wake;
            return ic;
        }
        return ic; // defers this cycle
    }

    if (isLoad(inst.op) && !discard) {
        // A load parked on an older unresolved store's address stalls
        // on a full DQ without touching the port; any other load shape
        // probes the port (or defers) this cycle.
        std::uint64_t v1 = inst.rs1 == 0 ? 0 : specRegs_[inst.rs1];
        Addr addr = semantics::effectiveAddr(inst, v1);
        unsigned size = memAccessSize(inst.op);
        SeqNum mem_producer = 0;
        for (const auto &st : ssq_) {
            if (st.resolved || st.addr == invalidAddr)
                continue;
            Addr lo = std::max(st.addr, addr);
            Addr hi = std::min(st.addr + st.size, addr + size);
            if (lo < hi)
                mem_producer = st.seq;
        }
        if (mem_producer != 0 && dqOccupancy() >= dqCapacity_) {
            ic.counter = &dqFullStallCycles_;
            ic.cat = trace::CpiCat::DqFull;
            ic.wake = wake;
            return ic;
        }
        return ic;
    }
    if (isStore(inst.op) && ssqOccupancy() >= ssqCapacity_) {
        ic.counter = &ssqFullStallCycles_;
        ic.cat = trace::CpiCat::SsqFull;
        ic.wake = wake;
        return ic;
    }
    return ic; // executes (or probes the port) this cycle
}

void
SstCore::normalCycle()
{
    for (unsigned slot = 0; slot < params_.fetchWidth; ++slot) {
        if (arch_.halted || !epochs_.empty())
            break;
        if (!normalIssueOne())
            break;
    }
}

bool
SstCore::normalIssueOne()
{
    if (frontEndReadyAt_ > now_) {
        noteStall(trace::CpiCat::Fetch);
        return false;
    }
    std::uint64_t pc = arch_.pc;
    Cycle fetch_at = fetchReady(pc);
    if (fetch_at > now_) {
        frontEndReadyAt_ = fetch_at;
        noteStall(trace::CpiCat::Fetch);
        return false;
    }

    const Inst &inst = program_.at(pc);
    const OpInfo &info = opInfo(inst.op);

    auto ready = [&](RegId r) { return r == 0 || regReady_[r] <= now_; };
    if ((info.readsRs1 && !ready(inst.rs1))
        || (info.readsRs2 && !ready(inst.rs2))) {
        noteStall(trace::CpiCat::UseStall);
        return false;
    }

    if ((info.cls == OpClass::IntDiv || info.cls == OpClass::FpDiv)
        && divBusyUntil_ > now_) {
        noteStall(trace::CpiCat::UseStall);
        return false;
    }

    if (isLoad(inst.op)) {
        Addr addr = semantics::effectiveAddr(inst, arch_.reg(inst.rs1));
        bool atomic = isAtomic(inst.op);
        // Elide a free lock's acquire: peek the functional value (the
        // shared image is coherent by construction) and, instead of
        // swapping, open a speculation region from this PC. The lock
        // line enters the speculative read set, so a remote acquire
        // squashes the region; the probe stays a *read* — elision must
        // not invalidate the other readers it is cooperating with.
        bool elide = atomic && params_.elideLocks
                     && !params_.discardSpecWork
                     && pc != suppressTriggerPc_ && pc != sleSuppressPc_
                     && memory_.read(addr, memAccessSize(inst.op)) == 0;
        AccessType type = atomic && !elide ? AccessType::Store
                                           : AccessType::Load;
        auto res = port_.access(type, addr, now_);
        if (res.rejected) {
            noteStall(trace::CpiCat::UseStall);
            return false;
        }
        if (atomic) {
            if (elide) {
                enterSpeculation(pc, res.readyCycle);
                SeqNum seq = nextSeq_++;
                logSpecLoad(seq, addr, memAccessSize(inst.op));
                if (inst.rd != 0) {
                    // The acquire reads the free value and "succeeds".
                    specRegs_[inst.rd] = 0;
                    specReady_[inst.rd] = res.readyCycle;
                }
                sleActive_ = true;
                sleLockAddr_ = addr;
                sleReleaseSeen_ = false;
                ++sleElisions_;
                record(trace::TraceKind::LockElide,
                       trace::TraceStrand::Ahead, pc, seq, 1);
                if (tracing())
                    trace("ELIDE pc=%llu lock=%llu",
                          static_cast<unsigned long long>(pc),
                          static_cast<unsigned long long>(addr));
                aheadPc_ = pc + 1;
                return true;
            }
            if (pc == sleSuppressPc_)
                sleSuppressPc_ = ~std::uint64_t{0}; // one-shot fallback
            if (pc == suppressTriggerPc_) {
                suppressTriggerPc_ = ~std::uint64_t{0};
                consecutiveFails_ = 0;
            }
            // Conventional atomic: execute in place (the functional
            // swap fires the write observer, squashing remote readers).
            Executor exec(program_, memory_);
            exec.step(arch_);
            ++loadsExecuted_;
            ++storesExecuted_;
            regReady_[inst.rd] = res.readyCycle;
            regCoh_[inst.rd] = res.coh;
            record(trace::TraceKind::Commit, trace::TraceStrand::Main,
                   pc, nextSeq_);
            ++nextSeq_;
            ++committed_;
            return true;
        }
        bool trigger = !res.l1Hit
                       && (!params_.deferOnL2MissOnly || !res.l2Hit);
        if (trigger && pc != suppressTriggerPc_) {
            // Long-latency event: checkpoint and start speculating. The
            // ahead strand re-issues this load as its first instruction.
            enterSpeculation(pc, res.readyCycle);
            return true;
        }
        if (pc == suppressTriggerPc_) {
            suppressTriggerPc_ = ~std::uint64_t{0};
            consecutiveFails_ = 0;
        }
        if (vpred_.enabled())
            vpred_.train(pc, semantics::extendLoad(
                                 inst.op,
                                 memory_.read(addr, memAccessSize(inst.op))));
        Executor exec(program_, memory_);
        exec.step(arch_);
        ++loadsExecuted_;
        regReady_[inst.rd] = res.readyCycle;
        regCoh_[inst.rd] = res.coh;
        record(trace::TraceKind::Commit, trace::TraceStrand::Main, pc,
               nextSeq_);
        ++nextSeq_;
        ++committed_;
        return true;
    }

    Executor exec(program_, memory_);
    StepInfo step = exec.step(arch_);
    record(trace::TraceKind::Commit, trace::TraceStrand::Main, pc,
           nextSeq_);
    ++nextSeq_;
    ++committed_;

    if (info.writesRd)
        regCoh_[inst.rd] = false; // non-load producers are never coherence
    switch (info.cls) {
      case OpClass::Store:
        ++storesExecuted_;
        storeBuffer_.push_back(
            PendingStore{step.effAddr, step.memSize, now_});
        break;
      case OpClass::Branch:
      case OpClass::Jump: {
        if (info.writesRd)
            regReady_[inst.rd] = now_ + 1;
        bool correct = resolveControl(inst, pc, step.nextPc, step.taken);
        if (!correct)
            frontEndReadyAt_ = now_ + params_.pipelineDepth;
        else if (step.taken)
            frontEndReadyAt_ = now_ + 1;
        break;
      }
      case OpClass::IntDiv:
      case OpClass::FpDiv:
        divBusyUntil_ = now_ + info.latency;
        regReady_[inst.rd] = now_ + info.latency;
        break;
      case OpClass::Other:
        break;
      default:
        if (info.writesRd)
            regReady_[inst.rd] = now_ + info.latency;
        break;
    }
    return true;
}

void
SstCore::enterSpeculation(std::uint64_t trigger_pc, Cycle trigger_ready)
{
    bool ok = takeCheckpoint(trigger_pc, nextSeq_);
    panic_if(!ok, "enterSpeculation with no free checkpoint");
    // Hand the predictor to the ahead strand, seeding its history
    // register from the committed stream's. No-ops without
    // core.strand_history (setStrand does nothing and the restore
    // rewrites the single register with itself).
    std::uint64_t hist = predictor_->snapshotHistory();
    predictor_->setStrand(BranchPredictor::aheadStrand);
    predictor_->restoreHistory(hist);
    // Scout regions end when the trigger data returns; record it here
    // because the ahead strand's re-execution of the load may already
    // hit (the fill can land before the strand reaches it).
    epochs_.back().triggerReady = trigger_ready;
    record(trace::TraceKind::Trigger, trace::TraceStrand::Ahead,
           trigger_pc, nextSeq_);
    if (tracing())
        trace("TRIGGER pc=%llu data_at=%llu",
              static_cast<unsigned long long>(trigger_pc),
              static_cast<unsigned long long>(trigger_ready));
    specRegs_ = arch_.regs;
    na_.fill(false);
    naWriter_.fill(0);
    specReady_ = regReady_;
    aheadPc_ = trigger_pc;
    aheadHalted_ = false;
    aheadFrontEndReadyAt_ = frontEndReadyAt_;
    aheadDivBusyUntil_ = divBusyUntil_;
}

bool
SstCore::takeCheckpoint(std::uint64_t trigger_pc, SeqNum start_seq)
{
    if (epochs_.size() >= params_.checkpoints)
        return false;
    Epoch e;
    e.id = nextEpochId_++;
    e.pc = trigger_pc;
    e.startSeq = start_seq;
    if (epochs_.empty()) {
        e.regs = arch_.regs;
    } else {
        e.regs = specRegs_;
        e.na = na_;
        e.naWriter = naWriter_;
    }
    e.predictorHistory = predictor_->snapshotHistory();
    e.ras = ras_;
    record(trace::TraceKind::Checkpoint, trace::TraceStrand::Ahead,
           trigger_pc, start_seq, e.id);
    if (tracing())
        trace("CHECKPOINT id=%u pc=%llu live=%zu", e.id,
              static_cast<unsigned long long>(trigger_pc),
              epochs_.size() + 1);
    epochs_.push_back(std::move(e));
    ++checkpointsTaken_;
    return true;
}

unsigned
SstCore::aheadStrand(unsigned slots)
{
    unsigned issued = 0;
    for (unsigned slot = 0; slot < slots; ++slot) {
        if (aheadHalted_ || epochs_.empty())
            break;
        if (!aheadIssueOne())
            break;
        ++issued;
    }
    return issued;
}

bool
SstCore::aheadIssueOne()
{
    if (aheadFrontEndReadyAt_ > now_)
        return false;
    std::uint64_t pc = aheadPc_;
    Cycle fetch_at = fetchReady(pc);
    if (fetch_at > now_) {
        aheadFrontEndReadyAt_ = fetch_at;
        return false;
    }

    const Inst &inst = program_.at(pc);
    const OpInfo &info = opInfo(inst.op);
    bool discard = params_.discardSpecWork;

    bool na1 = info.readsRs1 && inst.rs1 != 0 && na_[inst.rs1];
    bool na2 = info.readsRs2 && inst.rs2 != 0 && na_[inst.rs2];

    // Available operands must also be timing-ready (in-order strand).
    auto timing_ready = [&](bool reads, bool is_na, RegId r) {
        return !reads || is_na || r == 0 || specReady_[r] <= now_;
    };
    if (!timing_ready(info.readsRs1, na1, inst.rs1)
        || !timing_ready(info.readsRs2, na2, inst.rs2)) {
        ++aheadStallUseCycles_;
        noteStall(trace::CpiCat::UseStall);
        return false;
    }

    if ((info.cls == OpClass::IntDiv || info.cls == OpClass::FpDiv)
        && aheadDivBusyUntil_ > now_) {
        ++aheadStallUseCycles_;
        noteStall(trace::CpiCat::UseStall);
        return false;
    }

    if (isAtomic(inst.op)) {
        // Atomics never execute speculatively (their memory write is
        // globally visible). A nested atomic inside an elision aborts
        // it — the retry acquires conventionally; in a plain region the
        // atomic is a barrier: stall until the region drains, commits
        // through this PC, and normal mode re-issues it.
        if (sleActive_) {
            rollback(FailKind::CohConflict);
            return false;
        }
        ++aheadStallUseCycles_;
        noteStall(trace::CpiCat::UseStall);
        return false;
    }

    std::uint64_t v1 = inst.rs1 == 0 ? 0 : specRegs_[inst.rs1];
    std::uint64_t v2 = inst.rs2 == 0 ? 0 : specRegs_[inst.rs2];

    auto make_operand = [&](bool used, bool is_na, RegId r,
                            std::uint64_t v) {
        DeferredOperand op;
        op.used = used;
        if (!used)
            return op;
        if (is_na) {
            op.captured = false;
            op.producer = naWriter_[r];
        } else {
            op.captured = true;
            op.value = v;
        }
        return op;
    };

    auto kill_na = [&](RegId rd) {
        if (rd != 0) {
            na_[rd] = false;
            naWriter_[rd] = 0;
        }
    };

    if (na1 || na2) {
        // ---- deferral path ----
        if (!discard && dqOccupancy() >= dqCapacity_) {
            ++dqFullStallCycles_;
            noteStall(trace::CpiCat::DqFull);
            return false;
        }
        bool is_store = isStore(inst.op);
        if (is_store && ssqOccupancy() >= ssqCapacity_) {
            ++ssqFullStallCycles_;
            noteStall(trace::CpiCat::SsqFull);
            return false;
        }

        DqEntry entry;
        entry.pc = pc;
        entry.inst = inst;

        if (inst.op == Opcode::JALR) {
            // Indirect jump with an unknown target: only a return can be
            // predicted (via the RAS); anything else stalls the strand
            // until the replay resolves the register.
            bool is_return =
                inst.rd == 0 && inst.rs1 == 1 && inst.imm == 0;
            if (!is_return || ras_.empty()) {
                ++naJumpStallCycles_;
                return false;
            }
            // Check the throttle before popping: a failing attempt must
            // not mutate the RAS (it would drain an entry per stalled
            // cycle).
            if (params_.maxDeferredBranches != 0
                && unverifiedBranches_ >= params_.maxDeferredBranches) {
                ++branchThrottleStallCycles_;
                return false;
            }
            std::uint64_t pred = ras_.pop();
            ++unverifiedBranches_;
            entry.seq = nextSeq_++;
            entry.src1 = make_operand(true, na1, inst.rs1, v1);
            entry.predTarget = pred;
            if (inst.rd != 0) {
                specRegs_[inst.rd] = pc + 1; // link value is known
                specReady_[inst.rd] = now_ + 1;
                kill_na(inst.rd);
            }
            defer(std::move(entry), false);
            aheadPc_ = pred;
            return true;
        }

        entry.seq = nextSeq_++;
        entry.src1 = make_operand(info.readsRs1, na1, inst.rs1, v1);
        entry.src2 = make_operand(info.readsRs2, na2, inst.rs2, v2);

        if (isCondBranch(inst.op)) {
            if (params_.maxDeferredBranches != 0
                && unverifiedBranches_ >= params_.maxDeferredBranches) {
                ++branchThrottleStallCycles_;
                nextSeq_ = entry.seq; // un-consume the sequence number
                return false;
            }
            ++unverifiedBranches_;
            entry.predHistory = predictor_->snapshotHistory();
            entry.predTaken = predictor_->predict(pc);
            // Speculative history update, as a real front end does at
            // fetch; rollback restores the checkpoint's snapshot.
            predictor_->shiftHistory(entry.predTaken);
            aheadPc_ = entry.predTaken
                           ? pc
                                 + static_cast<std::uint64_t>(
                                     static_cast<std::int64_t>(inst.imm))
                           : pc + 1;
            defer(std::move(entry), false);
            return true;
        }

        std::uint64_t pv = 0;
        if (info.cls == OpClass::Load && !discard && inst.rd != 0
            && vpred_.predict(pc, pv)) {
            // NA-address load: the pointer chain itself is NA, but a
            // confident prediction of the *result* re-arms the chain —
            // rd stays available, so the next iteration's loads carry
            // (predicted) addresses and issue real misses. This is
            // where the MLP of a linked-list walk comes from; without
            // it, one cold defer leaves every later load NA and the
            // core degenerates to one replay per memory latency. The
            // address is unknown here, so both the read-set entry and
            // the verify happen at replay, once it resolves.
            entry.valuePredicted = true;
            entry.predValue = pv;
            specRegs_[inst.rd] = pv;
            specReady_[inst.rd] = now_ + 1;
            kill_na(inst.rd);
            ++vpPredictions_;
            ++vpOutstanding_;
            record(trace::TraceKind::Exec, trace::TraceStrand::Ahead,
                   pc, entry.seq, 2);
            if (tracing())
                trace("VPRED seq=%llu pc=%llu val=%llu (na-addr)",
                      static_cast<unsigned long long>(entry.seq),
                      static_cast<unsigned long long>(pc),
                      static_cast<unsigned long long>(pv));
        } else {
            // An unpredicted load defer de-anchors the value chain: its
            // replay will train the table, so until then lastValue lags
            // the ahead strand's position in the value sequence.
            if (info.cls == OpClass::Load && !discard)
                vpred_.notePendingDefer(pc);
            if (info.writesRd && inst.rd != 0) {
                na_[inst.rd] = true;
                naWriter_[inst.rd] = entry.seq;
            }
        }
        defer(std::move(entry), is_store);
        aheadPc_ = pc + 1;
        return true;
    }

    // ---- all operands available: speculative execution ----
    switch (info.cls) {
      case OpClass::Load: {
        Addr addr = semantics::effectiveAddr(inst, v1);
        unsigned size = memAccessSize(inst.op);

        // Memory dependence on an older deferred store whose address is
        // known: park the load on that store instead of gambling.
        SeqNum mem_producer = 0;
        bool unknown_store_overlap_possible = false;
        for (const auto &st : ssq_) {
            if (st.resolved)
                continue;
            if (st.addr == invalidAddr) {
                unknown_store_overlap_possible = true;
                continue;
            }
            Addr lo = std::max(st.addr, addr);
            Addr hi = std::min(st.addr + st.size, addr + size);
            if (lo < hi)
                mem_producer = st.seq; // youngest wins (ascending order)
        }
        if (mem_producer != 0 && !discard) {
            if (dqOccupancy() >= dqCapacity_) {
                ++dqFullStallCycles_;
                noteStall(trace::CpiCat::DqFull);
                return false;
            }
            DqEntry entry;
            entry.seq = nextSeq_++;
            entry.pc = pc;
            entry.inst = inst;
            entry.src1 = make_operand(true, false, inst.rs1, v1);
            entry.src2.used = true;
            entry.src2.captured = false;
            entry.src2.producer = mem_producer;
            vpred_.notePendingDefer(pc);
            if (inst.rd != 0) {
                na_[inst.rd] = true;
                naWriter_[inst.rd] = entry.seq;
            }
            defer(std::move(entry), false);
            aheadPc_ = pc + 1;
            return true;
        }

        auto res = port_.access(AccessType::Load, addr, now_);
        if (res.rejected) {
            ++aheadStallUseCycles_;
            noteStall(trace::CpiCat::UseStall);
            return false;
        }

        bool wants_defer = !res.l1Hit
                           && (!params_.deferOnL2MissOnly || !res.l2Hit);
        if (wants_defer && (discard || dqOccupancy() < dqCapacity_)) {
            // A further miss: open a new epoch when a checkpoint is
            // free, otherwise grow the current one.
            SeqNum seq = nextSeq_++;
            bool first_of_epoch = seq == epochs_.back().startSeq;
            // While eliding, the single open epoch owns the region (it
            // must publish atomically): no further checkpoints.
            if (!discard && !first_of_epoch && !sleActive_)
                takeCheckpoint(pc, seq); // may fail; that's fine
            if (discard && epochs_.front().triggerReady == 0)
                epochs_.front().triggerReady = res.readyCycle;
            DqEntry entry;
            entry.seq = seq;
            entry.pc = pc;
            entry.inst = inst;
            entry.src1 = make_operand(true, false, inst.rs1, v1);
            entry.requestIssued = true;
            entry.readyCycle = res.readyCycle;
            std::uint64_t pv = 0;
            if (!discard && inst.rd != 0 && vpred_.predict(pc, pv)) {
                // Confident value prediction: rd stays available with
                // the predicted value instead of going NA, so the
                // dependents keep executing; the DQ replay verifies the
                // prediction against the fill and a mismatch squashes
                // back to this region's checkpoint. The predicted value
                // enters the speculative read set now — a remote write
                // to the line must squash just as for an executed load.
                entry.valuePredicted = true;
                entry.predValue = pv;
                specRegs_[inst.rd] = pv;
                specReady_[inst.rd] = now_ + 1;
                kill_na(inst.rd);
                logSpecLoad(seq, addr, size);
                ++vpPredictions_;
                ++vpOutstanding_;
                record(trace::TraceKind::Exec, trace::TraceStrand::Ahead,
                       pc, seq, 2);
                if (tracing())
                    trace("VPRED seq=%llu pc=%llu val=%llu",
                          static_cast<unsigned long long>(seq),
                          static_cast<unsigned long long>(pc),
                          static_cast<unsigned long long>(pv));
            } else {
                if (!discard)
                    vpred_.notePendingDefer(pc);
                if (inst.rd != 0) {
                    na_[inst.rd] = true;
                    naWriter_[inst.rd] = seq;
                }
            }
            defer(std::move(entry), false);
            aheadPc_ = pc + 1;
            return true;
        }

        // Hit (or DQ full: treat the miss as a scoreboarded stall).
        SeqNum seq = nextSeq_++;
        std::uint64_t raw = specMemRead(addr, size, seq);
        std::uint64_t val = semantics::extendLoad(inst.op, raw);
        vpred_.train(pc, val);
        if (inst.rd != 0) {
            specRegs_[inst.rd] = val;
            specReady_[inst.rd] = res.readyCycle;
            kill_na(inst.rd);
        }
        if (!discard)
            logSpecLoad(seq, addr, size);
        if (unknown_store_overlap_possible) {
            // Value may be stale w.r.t. an unknown-address deferred
            // store; the conflict check at that store's replay is what
            // keeps this safe.
        }
        ++specLoads_;
        record(trace::TraceKind::Exec, trace::TraceStrand::Ahead, pc, seq,
               res.l1Hit ? 0 : 1);
        aheadPc_ = pc + 1;
        return true;
      }
      case OpClass::Store: {
        Addr addr = semantics::effectiveAddr(inst, v1);
        if (sleActive_ && !sleReleaseSeen_ && addr == sleLockAddr_
            && v2 == 0) {
            // The matching lock release: the store is elided too (the
            // lock word never left its free value), and the region may
            // now publish atomically.
            SeqNum seq = nextSeq_++;
            sleReleaseSeen_ = true;
            record(trace::TraceKind::Exec, trace::TraceStrand::Ahead, pc,
                   seq);
            aheadPc_ = pc + 1;
            return true;
        }
        if (ssqOccupancy() >= ssqCapacity_) {
            ++ssqFullStallCycles_;
            noteStall(trace::CpiCat::SsqFull);
            return false;
        }
        SeqNum seq = nextSeq_++;
        SsqEntry st;
        st.seq = seq;
        st.resolved = true;
        st.addr = addr;
        st.size = memAccessSize(inst.op);
        st.value = v2;
        // Scout also queues the store so younger speculative loads can
        // forward from it; the queue is simply discarded at scout end.
        ssq_.push_back(st);
        record(trace::TraceKind::Exec, trace::TraceStrand::Ahead, pc, seq);
        aheadPc_ = pc + 1;
        return true;
      }
      case OpClass::Branch: {
        SeqNum seq = nextSeq_++;
        (void)seq;
        bool taken = semantics::branchTaken(inst, v1, v2);
        std::uint64_t next =
            taken ? pc
                        + static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(inst.imm))
                  : pc + 1;
        bool correct = resolveControl(inst, pc, next, taken);
        if (!correct)
            aheadFrontEndReadyAt_ = now_ + params_.pipelineDepth;
        else if (taken)
            aheadFrontEndReadyAt_ = now_ + 1;
        aheadPc_ = next;
        return true;
      }
      case OpClass::Jump: {
        SeqNum seq = nextSeq_++;
        (void)seq;
        std::uint64_t next;
        if (inst.op == Opcode::JAL) {
            next = pc
                   + static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(inst.imm));
        } else {
            next = v1
                   + static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(inst.imm));
        }
        bool correct = resolveControl(inst, pc, next, true);
        if (!correct)
            aheadFrontEndReadyAt_ = now_ + params_.pipelineDepth;
        else
            aheadFrontEndReadyAt_ = now_ + 1;
        if (inst.rd != 0) {
            specRegs_[inst.rd] = pc + 1;
            specReady_[inst.rd] = now_ + 1;
            kill_na(inst.rd);
        }
        aheadPc_ = next;
        return true;
      }
      case OpClass::Other: {
        SeqNum seq = nextSeq_++;
        (void)seq;
        if (inst.op == Opcode::HALT) {
            aheadHalted_ = true;
            return true;
        }
        aheadPc_ = pc + 1;
        return true;
      }
      default: {
        SeqNum seq = nextSeq_++;
        std::uint64_t val = semantics::aluOp(inst, v1, v2);
        if (info.writesRd && inst.rd != 0) {
            specRegs_[inst.rd] = val;
            specReady_[inst.rd] = now_ + info.latency;
            kill_na(inst.rd);
        }
        if (info.cls == OpClass::IntDiv || info.cls == OpClass::FpDiv)
            aheadDivBusyUntil_ = now_ + info.latency;
        record(trace::TraceKind::Exec, trace::TraceStrand::Ahead, pc, seq);
        aheadPc_ = pc + 1;
        return true;
      }
    }
}

unsigned
SstCore::replayStrand(unsigned slots)
{
    unsigned used = 0;
    while (used < slots && !epochs_.empty()) {
        Epoch &epoch = epochs_.front();
        if (epoch.dq.empty()) {
            if (epoch.redeferred.empty())
                break; // drained; commit happens in tryCommit()
            epoch.dq.swap(epoch.redeferred);
            break; // pass boundary costs the rest of this cycle
        }

        DqEntry &entry = epoch.dq.front();
        const Inst &inst = entry.inst;
        const OpInfo &info = opInfo(inst.op);

        // Resolve operands against the replay results.
        Cycle ready = now_;
        bool pending = false;
        std::uint64_t v1 = 0;
        std::uint64_t v2 = 0;
        auto resolve = [&](const DeferredOperand &op,
                           std::uint64_t &out) {
            if (!op.used)
                return;
            if (op.captured) {
                out = op.value;
                return;
            }
            auto it = replayResults_.find(op.producer);
            if (it == replayResults_.end()) {
                pending = true;
                return;
            }
            out = it->second.value;
            ready = std::max(ready, it->second.readyCycle);
        };
        resolve(entry.src1, v1);
        resolve(entry.src2, v2);

        if (pending) {
            ++redeferredInsts_;
            record(trace::TraceKind::Redefer, trace::TraceStrand::Behind,
                   entry.pc, entry.seq);
            epoch.redeferred.push_back(std::move(entry));
            epoch.dq.pop_front();
            continue; // bookkeeping only; no execution slot consumed
        }
        if (entry.requestIssued)
            ready = std::max(ready, entry.readyCycle);
        if (ready > now_)
            break; // behind strand waits for data

        switch (info.cls) {
          case OpClass::Load: {
            panic_if(isAtomic(inst.op),
                     "atomic deferred into the DQ (the ahead strand "
                     "must treat atomics as barriers)");
            Addr addr = semantics::effectiveAddr(inst, v1);
            unsigned size = memAccessSize(inst.op);
            auto res = port_.access(AccessType::Load, addr, now_);
            if (res.rejected)
                return used; // retry next cycle
            if (!res.l1Hit && !entry.requestIssued) {
                // The replayed load misses: issue and re-defer.
                entry.requestIssued = true;
                entry.readyCycle = res.readyCycle;
                ++redeferredInsts_;
                record(trace::TraceKind::Redefer,
                       trace::TraceStrand::Behind, entry.pc, entry.seq, 1);
                epoch.redeferred.push_back(std::move(entry));
                epoch.dq.pop_front();
                ++used;
                continue;
            }
            std::uint64_t raw = specMemRead(addr, size, entry.seq);
            std::uint64_t val = semantics::extendLoad(inst.op, raw);
            // Replays run in program order, so this train is the oldest
            // in-flight instance of the PC resolving: the tip is one
            // instance closer to the trained value.
            vpred_.train(entry.pc, val);
            vpred_.noteDeferResolved(entry.pc);
            if (entry.valuePredicted) {
                // An NA-address prediction couldn't enter the read set
                // at prediction time; its address only resolved here.
                if (!entry.src1.captured)
                    logSpecLoad(entry.seq, addr, size);
                // Verify-on-fill: the ahead strand ran on predValue.
                if (vpOutstanding_ > 0)
                    --vpOutstanding_;
                if (val != entry.predValue) {
                    if (tracing())
                        trace("VPFAIL seq=%llu pc=%llu pred=%llu "
                              "actual=%llu",
                              static_cast<unsigned long long>(entry.seq),
                              static_cast<unsigned long long>(entry.pc),
                              static_cast<unsigned long long>(
                                  entry.predValue),
                              static_cast<unsigned long long>(val));
                    rollback(FailKind::ValueMispredict);
                    return used;
                }
                ++vpCorrect_;
            } else {
                // A predicted load already entered the read set at
                // prediction time (same address: src1 was captured).
                logSpecLoad(entry.seq, addr, size);
            }
            replayResults_[entry.seq] =
                ReplayResult{val, res.readyCycle};
            publishReplayValue(entry.seq, inst.rd, val, res.readyCycle);
            break;
          }
          case OpClass::Store: {
            Addr addr = semantics::effectiveAddr(inst, v1);
            unsigned size = memAccessSize(inst.op);
            // Lazy disambiguation: any younger speculatively executed
            // load that read these bytes saw stale data.
            if (storeConflicts(entry.seq, addr, size)) {
                rollback(FailKind::MemConflict);
                return used;
            }
            if (sleActive_ && !sleReleaseSeen_ && addr == sleLockAddr_
                && v2 == 0) {
                // A deferred lock release resolved here: elide it (drop
                // its SSQ slot) so the free lock word is never written
                // back — a committed rewrite of the same value would
                // needlessly squash the other cores elided on it.
                std::erase_if(ssq_, [&](const SsqEntry &st) {
                    return st.seq == entry.seq;
                });
                sleReleaseSeen_ = true;
                replayResults_[entry.seq] = ReplayResult{0, now_ + 1};
                break;
            }
            resolveSsqPlaceholder(entry.seq, addr, size, v2);
            replayResults_[entry.seq] = ReplayResult{0, now_ + 1};
            break;
          }
          case OpClass::Branch: {
            bool taken = semantics::branchTaken(inst, v1, v2);
            ++branches_;
            if (unverifiedBranches_ > 0)
                --unverifiedBranches_;
            // Train the entry the prediction actually read (tables
            // only: the direction already entered the history
            // speculatively when the branch was deferred).
            predictor_->trainAt(entry.pc, taken, entry.predHistory);
            if (taken != entry.predTaken) {
                ++mispredicts_;
                if (tracing())
                    trace("BRFAIL seq=%llu pc=%llu pred=%d actual=%d",
                          static_cast<unsigned long long>(entry.seq),
                          static_cast<unsigned long long>(entry.pc),
                          entry.predTaken ? 1 : 0, taken ? 1 : 0);
                rollback(FailKind::BranchMispredict);
                return used;
            }
            break;
          }
          case OpClass::Jump: {
            panic_if(inst.op != Opcode::JALR,
                     "only JALR can be deferred among jumps");
            std::uint64_t target =
                v1
                + static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(inst.imm));
            if (unverifiedBranches_ > 0)
                --unverifiedBranches_;
            if (target != entry.predTarget) {
                ++mispredicts_;
                rollback(FailKind::JumpMispredict);
                return used;
            }
            break;
          }
          default: {
            std::uint64_t val = semantics::aluOp(inst, v1, v2);
            Cycle done = ready + info.latency;
            replayResults_[entry.seq] = ReplayResult{val, done};
            publishReplayValue(entry.seq, inst.rd, val, done);
            break;
          }
        }

        record(trace::TraceKind::Replay, trace::TraceStrand::Behind,
               entry.pc, entry.seq);
        if (tracing())
            trace("REPLAY seq=%llu pc=%llu %s",
                  static_cast<unsigned long long>(entry.seq),
                  static_cast<unsigned long long>(entry.pc),
                  opInfo(entry.inst.op).mnemonic);
        ++replayedInsts_;
        epoch.dq.pop_front();
        ++used;
    }
    return used;
}

void
SstCore::tryCommit()
{
    if (epochs_.empty())
        return;

    if (params_.discardSpecWork) {
        Epoch &front = epochs_.front();
        if (front.triggerReady != 0 && front.triggerReady <= now_)
            rollback(FailKind::ScoutEnd);
        return;
    }

    Epoch &front = epochs_.front();
    if (!front.dq.empty() || !front.redeferred.empty())
        return;

    if (sleActive_) {
        // The elided critical section must publish atomically, and only
        // once its release has been observed: until then nothing
        // commits (sleActive_ also pins the region to this one epoch,
        // so the whole DQ is the front DQ checked above).
        if (!sleReleaseSeen_)
            return;
        commitAll();
        sleActive_ = false;
        sleLockAddr_ = invalidAddr;
        sleReleaseSeen_ = false;
        ++sleCommits_;
        record(trace::TraceKind::LockElide, trace::TraceStrand::Main,
               arch_.pc, nextSeq_, 1);
        return;
    }

    if (epochs_.size() == 1)
        commitAll();
    else
        commitOldestEpoch();
}

void
SstCore::commitOldestEpoch()
{
    Epoch &front = epochs_.front();
    Epoch &next = epochs_[1];
    for (unsigned r = 1; r < numArchRegs; ++r)
        panic_if(next.na[r],
                 "committing epoch %u but next snapshot has NA x%u",
                 front.id, r);
    std::uint64_t insts = next.startSeq - front.startSeq;
    committed_ += insts;
    epochInsts_.sample(insts);
    arch_.regs = next.regs;
    arch_.pc = next.pc;
    drainSsqUpTo(next.startSeq);
    std::erase_if(loadLog_, [&](const SpecLoad &ld) {
        return ld.seq < next.startSeq;
    });
    record(trace::TraceKind::Commit, trace::TraceStrand::Main, front.pc,
           front.startSeq, static_cast<std::uint32_t>(insts));
    if (tracing())
        trace("COMMIT epoch=%u insts=%llu", front.id,
              static_cast<unsigned long long>(insts));
    SeqNum bound = next.startSeq;
    epochs_.pop_front();
    // Drop replay results the committed epoch owned. A parked consumer
    // in a younger epoch may still name an older producer (publish only
    // clears NA bits, not DQ operands), so keep any seq a remaining
    // deferred operand references.
    if (!replayResults_.empty()) {
        std::vector<SeqNum> live;
        auto keep = [&](const DqEntry &e) {
            if (e.src1.used && !e.src1.captured
                && e.src1.producer < bound)
                live.push_back(e.src1.producer);
            if (e.src2.used && !e.src2.captured
                && e.src2.producer < bound)
                live.push_back(e.src2.producer);
        };
        for (const auto &epoch : epochs_) {
            for (const auto &e : epoch.dq)
                keep(e);
            for (const auto &e : epoch.redeferred)
                keep(e);
        }
        std::sort(live.begin(), live.end());
        for (auto it = replayResults_.begin();
             it != replayResults_.end();) {
            if (it->first < bound
                && !std::binary_search(live.begin(), live.end(),
                                       it->first))
                it = replayResults_.erase(it);
            else
                ++it;
        }
    }
    ++epochsCommitted_;
    // The oldest region retired: pending speculation cycles keep their
    // provisional categories. (Cycles of still-live younger epochs are
    // folded in too — a deliberate approximation; a later rollback only
    // discards work done after this point.)
    flushPendingSpec(false);
}

void
SstCore::commitAll()
{
    Epoch &front = epochs_.front();
    for (unsigned r = 1; r < numArchRegs; ++r)
        panic_if(na_[r], "full commit with NA register x%u", r);
    std::uint64_t insts = nextSeq_ - front.startSeq;
    committed_ += insts;
    epochInsts_.sample(insts);
    arch_.regs = specRegs_;
    arch_.pc = aheadPc_;
    drainSsqUpTo(nextSeq_);
    panic_if(!ssq_.empty(), "SSQ not empty after full commit");
    loadLog_.clear();
    replayResults_.clear();
    epochs_.clear();
    regReady_ = specReady_;
    frontEndReadyAt_ = aheadFrontEndReadyAt_;
    divBusyUntil_ = aheadDivBusyUntil_;
    // The ahead strand's branch history is now architectural: the main
    // strand adopts it (no-op without core.strand_history).
    std::uint64_t hist = predictor_->snapshotHistory();
    predictor_->setStrand(BranchPredictor::mainStrand);
    predictor_->restoreHistory(hist);
    if (aheadHalted_)
        arch_.halted = true;
    ++epochsCommitted_;
    ++fullCommits_;
    record(trace::TraceKind::Commit, trace::TraceStrand::Main, arch_.pc,
           nextSeq_, static_cast<std::uint32_t>(insts));
    if (tracing())
        trace("COMMIT_ALL insts=%llu pc=%llu",
              static_cast<unsigned long long>(insts),
              static_cast<unsigned long long>(arch_.pc));
    flushPendingSpec(false);
}

void
SstCore::rollback(FailKind kind)
{
    Epoch &front = epochs_.front();
    discardedInsts_ += nextSeq_ - front.startSeq;
    switch (kind) {
      case FailKind::BranchMispredict: ++failBranch_; break;
      case FailKind::JumpMispredict: ++failJump_; break;
      case FailKind::MemConflict: ++failMem_; break;
      case FailKind::ScoutEnd: ++scoutEnds_; break;
      case FailKind::Forced: ++failForced_; break;
      case FailKind::CohConflict: ++failCoh_; break;
      case FailKind::ValueMispredict: ++failVpred_; break;
    }

    if (sleActive_) {
        // The elision is abandoned whatever the rollback's cause; the
        // retry at the acquire PC (the front checkpoint's PC) takes the
        // lock conventionally so two cores ping-ponging elisions cannot
        // livelock (requester wins).
        ++sleAborts_;
        record(trace::TraceKind::LockElide, trace::TraceStrand::Main,
               front.pc, front.startSeq, 0);
        sleActive_ = false;
        sleLockAddr_ = invalidAddr;
        sleReleaseSeen_ = false;
        sleSuppressPc_ = front.pc;
    }

    record(trace::TraceKind::Rollback, trace::TraceStrand::Main, front.pc,
           front.startSeq, static_cast<std::uint32_t>(kind));
    if (tracing())
        trace("ROLLBACK kind=%d to_pc=%llu discarded=%llu",
              static_cast<int>(kind),
              static_cast<unsigned long long>(front.pc),
              static_cast<unsigned long long>(nextSeq_
                                              - front.startSeq));
    // Every speculation cycle of this region was wasted work; when a
    // remote write caused it, the waste is coherence contention, and
    // when a predicted load value caused it, the waste belongs to the
    // value predictor's CPI bucket.
    trace::CpiCat discard_cat = trace::CpiCat::RollbackDiscard;
    if (kind == FailKind::CohConflict)
        discard_cat = trace::CpiCat::Coherence;
    else if (kind == FailKind::ValueMispredict)
        discard_cat = trace::CpiCat::ValuePredWaste;
    flushPendingSpec(true, discard_cat);
    // Committed state is exactly the front checkpoint; re-execute from
    // its trigger PC (whose data has normally arrived by now). The
    // speculative-state repair covers the PC, the global branch
    // history (into the main strand's register) and the RAS.
    arch_.pc = front.pc;
    predictor_->setStrand(BranchPredictor::mainStrand);
    predictor_->restoreHistory(front.predictorHistory);
    ras_ = front.ras;

    // "No meaningful progress" = fewer than a handful of instructions
    // retired since the previous rollback at this PC; a tiny commit
    // squeezed between two fails must not reset the guard.
    if (front.pc == lastFailTriggerPc_
        && committed_.value() < lastRollbackCommitted_ + 8) {
        if (++consecutiveFails_ >= 2 && suppressTriggerPc_ != front.pc) {
            suppressTriggerPc_ = front.pc;
            ++livelockSuppressions_;
        }
    } else {
        lastFailTriggerPc_ = front.pc;
        consecutiveFails_ = 1;
    }
    lastRollbackCommitted_ = committed_.value();

    epochs_.clear();
    ssq_.clear();
    loadLog_.clear();
    replayResults_.clear();
    aheadHalted_ = false;
    unverifiedBranches_ = 0;
    vpOutstanding_ = 0;
    vpred_.squash();
    na_.fill(false);
    naWriter_.fill(0);
}

void
SstCore::accountCycle(std::uint64_t retired)
{
    // Cycles spent inside a speculation region can't be classified yet:
    // the region's fate decides whether they were useful overlap
    // (replay / queue-pressure) or discarded work. Hold them pending.
    // epochs_ is the post-cycle() state, so a mid-cycle commit-all
    // (retired > 0) or rollback is already accounted correctly.
    if (!epochs_.empty() && retired == 0) {
        trace::CpiCat cat = (stallCat_ == trace::CpiCat::DqFull
                             || stallCat_ == trace::CpiCat::SsqFull)
                                ? stallCat_
                                : (vpOutstanding_ > 0
                                       ? trace::CpiCat::ValuePred
                                       : trace::CpiCat::Replay);
        ++pendingSpec_[static_cast<std::size_t>(cat)];
        return;
    }
    Core::accountCycle(retired);
}

void
SstCore::flushPendingSpec(bool discarded, trace::CpiCat discardCat)
{
    for (std::size_t i = 0; i < trace::numCpiCats; ++i) {
        if (pendingSpec_[i] == 0)
            continue;
        cpiStack_.add(discarded ? discardCat
                                : static_cast<trace::CpiCat>(i),
                      pendingSpec_[i]);
        pendingSpec_[i] = 0;
    }
}

void
SstCore::finalizeAttribution()
{
    flushPendingSpec(false);
}

bool
SstCore::degradeSpeculation()
{
    if (epochs_.empty())
        return false;
    // Abandon the whole in-flight region and force the trigger load to
    // execute non-speculatively: the core keeps making architectural
    // progress even if whatever stalled speculation (e.g. a dropped
    // fill) persists.
    std::uint64_t pc = epochs_.front().pc;
    rollback(FailKind::Forced);
    suppressTriggerPc_ = pc;
    consecutiveFails_ = 0;
    ++watchdogDegrades_;
    return true;
}


void
SstCore::saveExtra(snap::Writer &w) const
{
    auto saveDq = [&w](const std::deque<DqEntry> &dq) {
        w.u32(static_cast<std::uint32_t>(dq.size()));
        for (const DqEntry &e : dq) {
            w.u64(e.seq);
            w.u64(e.pc);
            w.u64(e.inst.encode());
            for (const DeferredOperand *op : {&e.src1, &e.src2}) {
                w.b(op->used);
                w.b(op->captured);
                w.u64(op->value);
                w.u64(op->producer);
            }
            w.b(e.predTaken);
            w.u64(e.predHistory);
            w.u64(e.predTarget);
            w.b(e.requestIssued);
            w.u64(e.readyCycle);
            w.b(e.valuePredicted);
            w.u64(e.predValue);
        }
    };

    for (std::uint64_t v : pendingSpec_)
        w.u64(v);
    for (std::uint64_t v : specRegs_)
        w.u64(v);
    for (bool v : na_)
        w.b(v);
    for (SeqNum v : naWriter_)
        w.u64(v);
    for (Cycle v : specReady_)
        w.u64(v);
    w.u64(aheadPc_);
    w.b(aheadHalted_);
    w.b(specProgress_);
    w.u64(aheadFrontEndReadyAt_);
    w.u64(aheadDivBusyUntil_);
    for (Cycle v : regReady_)
        w.u64(v);
    w.u64(frontEndReadyAt_);
    w.u64(divBusyUntil_);
    w.u64(nextSeq_);
    w.u32(nextEpochId_);
    w.u32(dqCapacity_);
    w.u32(ssqCapacity_);
    w.u32(unverifiedBranches_);

    w.u32(static_cast<std::uint32_t>(epochs_.size()));
    for (const Epoch &ep : epochs_) {
        w.u32(ep.id);
        w.u64(ep.pc);
        w.u64(ep.startSeq);
        for (std::uint64_t v : ep.regs)
            w.u64(v);
        for (bool v : ep.na)
            w.b(v);
        for (SeqNum v : ep.naWriter)
            w.u64(v);
        w.u64(ep.predictorHistory);
        ep.ras.save(w);
        w.u64(ep.triggerReady);
        saveDq(ep.dq);
        saveDq(ep.redeferred);
    }

    w.u32(static_cast<std::uint32_t>(ssq_.size()));
    for (const SsqEntry &e : ssq_) {
        w.u64(e.seq);
        w.b(e.resolved);
        w.u64(e.addr);
        w.u32(e.size);
        w.u64(e.value);
    }

    w.u32(static_cast<std::uint32_t>(loadLog_.size()));
    for (const SpecLoad &l : loadLog_) {
        w.u64(l.seq);
        w.u64(l.addr);
        w.u32(l.size);
    }

    // unordered_map: emit sorted by seq so equal state hashes equal.
    std::vector<SeqNum> seqs;
    seqs.reserve(replayResults_.size());
    for (const auto &kv : replayResults_)
        seqs.push_back(kv.first);
    std::sort(seqs.begin(), seqs.end());
    w.u32(static_cast<std::uint32_t>(seqs.size()));
    for (SeqNum seq : seqs) {
        const ReplayResult &res = replayResults_.at(seq);
        w.u64(seq);
        w.u64(res.value);
        w.u64(res.readyCycle);
    }

    w.u32(static_cast<std::uint32_t>(storeBuffer_.size()));
    for (const PendingStore &st : storeBuffer_) {
        w.u64(st.addr);
        w.u32(st.size);
        w.u64(st.issuableAt);
    }

    w.u64(lastFailTriggerPc_);
    w.u64(lastRollbackCommitted_);
    w.u32(consecutiveFails_);
    w.u64(suppressTriggerPc_);

    for (bool v : regCoh_)
        w.b(v);
    w.b(pendingCohSquash_);
    w.b(sleActive_);
    w.u64(sleLockAddr_);
    w.b(sleReleaseSeen_);
    w.u64(sleSuppressPc_);

    vpred_.save(w);
    w.u32(vpOutstanding_);
}

void
SstCore::loadExtra(snap::Reader &r)
{
    auto loadDq = [&r](std::deque<DqEntry> &dq) {
        dq.clear();
        std::uint32_t n = r.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
            DqEntry &e = dq.emplace_back();
            e.seq = r.u64();
            e.pc = r.u64();
            e.inst = Inst::decode(r.u64());
            for (DeferredOperand *op : {&e.src1, &e.src2}) {
                op->used = r.b();
                op->captured = r.b();
                op->value = r.u64();
                op->producer = r.u64();
            }
            e.predTaken = r.b();
            e.predHistory = r.u64();
            e.predTarget = r.u64();
            e.requestIssued = r.b();
            e.readyCycle = r.u64();
            e.valuePredicted = r.b();
            e.predValue = r.u64();
        }
    };

    for (std::uint64_t &v : pendingSpec_)
        v = r.u64();
    for (std::uint64_t &v : specRegs_)
        v = r.u64();
    for (std::size_t i = 0; i < na_.size(); ++i)
        na_[i] = r.b();
    for (SeqNum &v : naWriter_)
        v = r.u64();
    for (Cycle &v : specReady_)
        v = r.u64();
    aheadPc_ = r.u64();
    aheadHalted_ = r.b();
    specProgress_ = r.b();
    aheadFrontEndReadyAt_ = r.u64();
    aheadDivBusyUntil_ = r.u64();
    for (Cycle &v : regReady_)
        v = r.u64();
    frontEndReadyAt_ = r.u64();
    divBusyUntil_ = r.u64();
    nextSeq_ = r.u64();
    nextEpochId_ = r.u32();
    dqCapacity_ = r.u32();
    ssqCapacity_ = r.u32();
    unverifiedBranches_ = r.u32();

    epochs_.clear();
    std::uint32_t nEpochs = r.u32();
    for (std::uint32_t i = 0; i < nEpochs; ++i) {
        Epoch &ep = epochs_.emplace_back();
        ep.id = r.u32();
        ep.pc = r.u64();
        ep.startSeq = r.u64();
        for (std::uint64_t &v : ep.regs)
            v = r.u64();
        for (std::size_t j = 0; j < ep.na.size(); ++j)
            ep.na[j] = r.b();
        for (SeqNum &v : ep.naWriter)
            v = r.u64();
        ep.predictorHistory = r.u64();
        ep.ras.load(r);
        ep.triggerReady = r.u64();
        loadDq(ep.dq);
        loadDq(ep.redeferred);
    }

    ssq_.clear();
    std::uint32_t nSsq = r.u32();
    ssq_.resize(nSsq);
    for (SsqEntry &e : ssq_) {
        e.seq = r.u64();
        e.resolved = r.b();
        e.addr = r.u64();
        e.size = r.u32();
        e.value = r.u64();
    }

    loadLog_.clear();
    std::uint32_t nLoads = r.u32();
    loadLog_.resize(nLoads);
    for (SpecLoad &l : loadLog_) {
        l.seq = r.u64();
        l.addr = r.u64();
        l.size = r.u32();
    }

    replayResults_.clear();
    std::uint32_t nReplay = r.u32();
    replayResults_.reserve(nReplay);
    for (std::uint32_t i = 0; i < nReplay; ++i) {
        SeqNum seq = r.u64();
        ReplayResult res;
        res.value = r.u64();
        res.readyCycle = r.u64();
        replayResults_.emplace(seq, res);
    }

    storeBuffer_.clear();
    std::uint32_t nStores = r.u32();
    for (std::uint32_t i = 0; i < nStores; ++i) {
        PendingStore &st = storeBuffer_.emplace_back();
        st.addr = r.u64();
        st.size = r.u32();
        st.issuableAt = r.u64();
    }

    lastFailTriggerPc_ = r.u64();
    lastRollbackCommitted_ = r.u64();
    consecutiveFails_ = r.u32();
    suppressTriggerPc_ = r.u64();

    for (auto &&v : regCoh_)
        v = r.b();
    pendingCohSquash_ = r.b();
    sleActive_ = r.b();
    sleLockAddr_ = r.u64();
    sleReleaseSeen_ = r.b();
    sleSuppressPc_ = r.u64();

    vpred_.load(r);
    vpOutstanding_ = r.u32();
}

} // namespace sst
