#include "core/core.hh"

#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst
{

Core::Core(const CoreParams &params, const Program &program,
           MemoryImage &memory, CorePort &port)
    : params_(params),
      program_(program),
      memory_(memory),
      port_(port),
      predictor_(makePredictor(params.predictor, params.strandHistory)),
      stats_(params.name),
      cpiStack_(stats_),
      committed_(stats_.addScalar("committed_insts",
                                  "architecturally retired instructions")),
      cyclesStat_(stats_.addScalar("cycles", "simulated cycles")),
      branches_(stats_.addScalar("branches", "conditional branches")),
      mispredicts_(stats_.addScalar("mispredicts",
                                    "direction/target mispredictions")),
      loadsExecuted_(stats_.addScalar("loads", "loads executed")),
      storesExecuted_(stats_.addScalar("stores", "stores executed"))
{
    stats_.addFormula("ipc", "committed instructions per cycle", [this] {
        auto c = cyclesStat_.value();
        return c ? static_cast<double>(committed_.value())
                       / static_cast<double>(c)
                 : 0.0;
    });
    stats_.addFormula("mispredict_rate", "mispredicts per branch", [this] {
        auto b = branches_.value();
        return b ? static_cast<double>(mispredicts_.value())
                       / static_cast<double>(b)
                 : 0.0;
    });
    stats_.addChild(port.stats());
}

void
Core::tick()
{
    if (arch_.halted)
        return;
    std::uint64_t before = committed_.value();
    stallCat_ = trace::CpiCat::Other;
    cycle();
    accountCycle(committed_.value() - before);
    ++now_;
    ++cyclesStat_;
}

void
Core::advanceIdle(Cycle n)
{
    if (n == 0)
        return;
    idleAdvance(n);
    now_ += n;
    cyclesStat_ += n;
}

void
Core::idleAdvance(Cycle n)
{
    (void)n;
    panic("%s: advanceIdle without an idleAdvance implementation",
          params_.name.c_str());
}

double
Core::ipc() const
{
    Cycle elapsed = now_ - startCycle_;
    return elapsed ? static_cast<double>(committed_.value())
                         / static_cast<double>(elapsed)
                   : 0.0;
}

void
Core::warmStart(const ArchState &state, Cycle start_cycle)
{
    panic_if(now_ != 0 && now_ != startCycle_,
             "warmStart after execution began");
    arch_ = state;
    arch_.halted = false;
    now_ = start_cycle;
    startCycle_ = start_cycle;
}

void
Core::trace(const char *fmt, ...)
{
    if (!traceSink_)
        return;
    char buf[256];
    int n = std::snprintf(buf, sizeof(buf), "C%llu ",
                          static_cast<unsigned long long>(now_));
    va_list ap;
    va_start(ap, fmt);
    int need = std::vsnprintf(buf + n, sizeof(buf) - n, fmt, ap);
    va_end(ap);
    if (need < 0) {
        traceSink_(buf);
        return;
    }
    if (static_cast<std::size_t>(need) < sizeof(buf) - n) {
        traceSink_(buf);
        return;
    }
    // The line didn't fit: format again into a heap buffer sized by the
    // first pass. The va_list was consumed above, so re-va_start it.
    std::string line(static_cast<std::size_t>(n) + need + 1, '\0');
    std::memcpy(line.data(), buf, n);
    va_start(ap, fmt);
    std::vsnprintf(line.data() + n, static_cast<std::size_t>(need) + 1,
                   fmt, ap);
    va_end(ap);
    line.resize(static_cast<std::size_t>(n) + need);
    traceSink_(line);
}

void
Core::save(snap::Writer &w) const
{
    w.tag("core");
    w.str(model());
    arch_.save(w);
    w.u64(now_);
    w.u64(startCycle_);
    w.u64(lastFetchLine_);
    w.u64(fetchLineReady_);
    w.u8(static_cast<std::uint8_t>(stallCat_));
    predictor_->save(w);
    btb_.save(w);
    ras_.save(w);
    stats_.save(w);
    w.tag("core-extra");
    saveExtra(w);
}

void
Core::load(snap::Reader &r)
{
    r.tag("core");
    std::string m = r.str();
    fatal_if(m != model(),
             "snapshot: core model '%s' where '%s' expected "
             "(configuration mismatch)",
             m.c_str(), model());
    arch_.load(r);
    now_ = r.u64();
    startCycle_ = r.u64();
    lastFetchLine_ = r.u64();
    fetchLineReady_ = r.u64();
    std::uint8_t cat = r.u8();
    fatal_if(cat >= static_cast<std::uint8_t>(trace::CpiCat::NumCats),
             "snapshot: bad CPI category %u (corrupt snapshot)", cat);
    stallCat_ = static_cast<trace::CpiCat>(cat);
    predictor_->load(r);
    btb_.load(r);
    ras_.load(r);
    stats_.load(r);
    r.tag("core-extra");
    loadExtra(r);
}

Cycle
Core::fetchReady(std::uint64_t pc)
{
    Addr addr = program_.instAddr(pc);
    Addr line = port_.l1i().lineAddr(addr);
    if (line == lastFetchLine_)
        return fetchLineReady_;
    auto res = port_.access(AccessType::InstFetch, addr, now_);
    if (res.rejected) {
        // Structural fetch stall: don't cache the line state so the
        // retry re-probes.
        return res.retryCycle;
    }
    lastFetchLine_ = line;
    record(trace::TraceKind::Fetch, trace::TraceStrand::Main, pc, 0,
           res.l1Hit ? 0 : 1);
    // The front end is pipelined: an L1I hit is hidden by the fetch
    // stages (already accounted in the mispredict penalty); only misses
    // stall the stream.
    fetchLineReady_ = res.l1Hit ? now_ : res.readyCycle;
    return fetchLineReady_;
}

bool
Core::resolveControl(const Inst &inst, std::uint64_t pc,
                     std::uint64_t nextPc, bool taken)
{
    if (isCondBranch(inst.op)) {
        ++branches_;
        bool predTaken = predictor_->predict(pc);
        predictor_->update(pc, taken);
        bool targetKnown = true;
        if (taken) {
            targetKnown = btb_.lookup(pc) == nextPc;
            btb_.update(pc, nextPc);
        }
        bool correct = predTaken == taken && (!taken || targetKnown);
        if (!correct)
            ++mispredicts_;
        return correct;
    }

    if (inst.op == Opcode::JAL) {
        // Direct target: BTB learns it; first encounter redirects.
        bool known = btb_.lookup(pc) == nextPc;
        btb_.update(pc, nextPc);
        if (inst.rd != 0)
            ras_.push(pc + 1);
        if (!known)
            ++mispredicts_;
        return known;
    }

    if (inst.op == Opcode::JALR) {
        bool isReturn = inst.rd == 0 && inst.rs1 == 1 && inst.imm == 0;
        std::uint64_t pred = isReturn ? ras_.pop() : btb_.lookup(pc);
        btb_.update(pc, nextPc);
        if (inst.rd != 0)
            ras_.push(pc + 1);
        bool correct = pred == nextPc;
        if (!correct)
            ++mispredicts_;
        return correct;
    }

    return true;
}

} // namespace sst
