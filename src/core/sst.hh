/**
 * @file
 * Simultaneous Speculative Threading core — the paper's contribution.
 *
 * One sequential program, two hardware strands:
 *
 *  - The **ahead strand** executes every instruction whose operands are
 *    available. A load that misses the L1 takes a register checkpoint
 *    (up to params.checkpoints epochs in flight), marks its destination
 *    NA (not available) and keeps going; NA propagates through dataflow,
 *    and any instruction reading an NA register is parked in the
 *    **Deferred Queue** together with its already-available operands and
 *    the identity (seq) of the deferred producer of each NA operand.
 *
 *  - The **behind strand** replays the oldest epoch's DQ entries, in
 *    program order, once the triggering miss data returns — running
 *    *simultaneously* with the ahead strand. Replayed loads that miss
 *    again are re-deferred into a later pass. Results are published back
 *    to the ahead strand's register file and to younger checkpoint
 *    snapshots (matching on the producer seq), so NA bits dissolve
 *    exactly where they originated.
 *
 * Speculative stores live in a **speculative store queue** (byte-
 * accurate forwarding) and drain to memory only at checkpoint commit.
 * Memory disambiguation is lazy: a store deferred with an unknown
 * address is checked at replay against the log of speculatively
 * executed younger loads; a conflict — like a mispredicted deferred
 * branch — discards speculation and rolls back to the checkpoint. This
 * is how SST does without rename tables, a ROB, an issue window, or a
 * disambiguation buffer.
 *
 * With params.discardSpecWork=true and checkpoints=1 the same machine
 * degenerates into a hardware-scout (runahead) core: deferrals are
 * dropped, and all speculative work is thrown away when the trigger
 * miss returns — only its prefetching and predictor training remain.
 */

#ifndef SSTSIM_CORE_SST_HH
#define SSTSIM_CORE_SST_HH

#include <array>
#include <deque>
#include <unordered_map>
#include <vector>

#include "branch/valuepred.hh"
#include "core/core.hh"

namespace sst
{

/** Checkpoint-based dual-strand speculative core. */
class SstCore : public Core, public CohClient
{
  public:
    SstCore(const CoreParams &params, const Program &program,
            MemoryImage &memory, CorePort &port);
    ~SstCore() override;

    const char *model() const override
    {
        return params_.discardSpecWork ? "scout" : "sst";
    }

    /** Coherence fabric probe: does the speculative read set (the load
     *  log, which includes an elided lock's line) cover @p line? */
    bool specReadsLine(Addr line) const override;
    /** A remote functional write hit the read set: note the squash; it
     *  is processed at the top of this core's next cycle (the fabric
     *  calls in mid-tick of the *writing* core). */
    void cohSquash() override;

    /** True while at least one checkpoint is live. */
    bool speculating() const { return !epochs_.empty(); }

    /** Watchdog escalation: roll back and suppress the trigger PC. */
    bool degradeSpeculation() override;

    /** Flush speculating cycles still awaiting their region's fate. */
    void finalizeAttribution() override;

    Cycle nextWakeCycle() const override;

  protected:
    void cycle() override;
    void idleAdvance(Cycle n) override;
    void saveExtra(snap::Writer &w) const override;
    void loadExtra(snap::Reader &r) override;

    /** In-speculation cycles are attributed provisionally: their final
     *  category depends on whether the region commits (replay /
     *  dq_full / ssq_full) or rolls back (rollback_discard). */
    void accountCycle(std::uint64_t retired) override;

  private:
    /** One operand of a deferred instruction. */
    struct DeferredOperand
    {
        bool used = false;     ///< instruction reads this operand
        bool captured = true;  ///< value was available at defer time
        std::uint64_t value = 0;
        SeqNum producer = 0;   ///< deferred producer when !captured
    };

    /** A parked instruction awaiting replay. */
    struct DqEntry
    {
        SeqNum seq = 0;
        std::uint64_t pc = 0;
        Inst inst;
        DeferredOperand src1;
        DeferredOperand src2;
        bool predTaken = false;         ///< deferred-branch prediction
        std::uint64_t predHistory = 0;  ///< GHR at prediction time
        std::uint64_t predTarget = 0;   ///< deferred-JALR prediction
        bool requestIssued = false;     ///< trigger load: miss in flight
        Cycle readyCycle = 0;           ///< fill completion when issued
        bool valuePredicted = false;    ///< rd carries a predicted value
        std::uint64_t predValue = 0;    ///< verified against the fill
    };

    /** A speculative store (or a reservation for a deferred one). */
    struct SsqEntry
    {
        SeqNum seq = 0;
        bool resolved = false; ///< address+data known
        Addr addr = invalidAddr;
        unsigned size = 0;
        std::uint64_t value = 0;
    };

    /** Speculatively executed load, logged for lazy disambiguation. */
    struct SpecLoad
    {
        SeqNum seq;
        Addr addr;
        unsigned size;
    };

    /** Result of a replayed instruction, keyed by producer seq. */
    struct ReplayResult
    {
        std::uint64_t value = 0;
        Cycle readyCycle = 0;
    };

    /** A checkpointed speculation region. */
    struct Epoch
    {
        unsigned id = 0;
        std::uint64_t pc = 0; ///< re-execution point (the trigger's PC)
        SeqNum startSeq = 0;
        std::array<std::uint64_t, numArchRegs> regs{};
        std::array<bool, numArchRegs> na{};
        std::array<SeqNum, numArchRegs> naWriter{};
        std::uint64_t predictorHistory = 0;
        /** RAS snapshot: rollback must repair the return-address stack
         *  alongside the global branch history, or every rollback
         *  leaves it corrupted relative to the restored PC. */
        ReturnAddressStack ras;
        Cycle triggerReady = 0; ///< scout: when the trigger returns
        std::deque<DqEntry> dq;
        std::deque<DqEntry> redeferred;
    };

    /** Why a speculative region was discarded. */
    enum class FailKind
    {
        BranchMispredict,
        JumpMispredict,
        MemConflict,
        ScoutEnd,
        Forced,      ///< injected fault or watchdog degradation
        CohConflict, ///< remote write hit the speculative read set
        ValueMispredict ///< predicted load value wrong at fill verify
    };

    // --- strand bodies ---
    void normalCycle();
    bool normalIssueOne();
    unsigned replayStrand(unsigned slots);
    unsigned aheadStrand(unsigned slots);
    bool aheadIssueOne();
    void drainStoreBuffer();
    void tryCommit();

    // --- speculation control ---
    void enterSpeculation(std::uint64_t trigger_pc, Cycle trigger_ready);
    bool takeCheckpoint(std::uint64_t trigger_pc, SeqNum start_seq);
    void commitOldestEpoch();
    void commitAll();
    void rollback(FailKind kind);

    // --- helpers ---
    /** Read @p size bytes at @p addr as seen by instruction @p before:
     *  memory image overlaid with resolved SSQ stores older than it. */
    std::uint64_t specMemRead(Addr addr, unsigned size,
                              SeqNum before) const;
    /** Publish a replay result to the ahead strand and snapshots. */
    void publishReplayValue(SeqNum seq, RegId rd, std::uint64_t value,
                            Cycle ready);
    /** Record a deferred instruction (ahead strand). */
    void defer(DqEntry entry, bool reserveSsqSlot);
    unsigned dqOccupancy() const;
    unsigned ssqOccupancy() const { return static_cast<unsigned>(ssq_.size()); }
    /** Resolve a deferred store's slot in the SSQ (placeholder fill). */
    void resolveSsqPlaceholder(SeqNum seq, Addr addr, unsigned size,
                               std::uint64_t value);
    /** Drain SSQ entries with seq < @p bound into memory + store buffer. */
    void drainSsqUpTo(SeqNum bound);
    /** Record a speculatively executed load for lazy disambiguation
     *  (byte-exact or line-granular per CoreParams). */
    void logSpecLoad(SeqNum seq, Addr addr, unsigned size);
    /** True when a replayed store to [addr, addr+size) conflicts with a
     *  logged younger speculative load. */
    bool storeConflicts(SeqNum store_seq, Addr addr, unsigned size) const;

    /** Move pending speculation cycles into the CPI stack: to their
     *  provisional categories on commit, to @p discardCat (normally
     *  RollbackDiscard; Coherence for remote-write squashes, so the
     *  sharing benches can attribute contention) when @p discarded. */
    void flushPendingSpec(bool discarded,
                          trace::CpiCat discardCat =
                              trace::CpiCat::RollbackDiscard);

    /** Wake-cycle analysis across the store buffer, the behind strand's
     *  replay front and the ahead strand's first-failing condition. */
    IdleClass classifyIdle() const;

    /** Speculating cycles charged but not yet assigned a final CPI
     *  category (indexed by provisional CpiCat). */
    std::array<std::uint64_t, trace::numCpiCats> pendingSpec_{};

    // --- ahead-strand speculative register view ---
    std::array<std::uint64_t, numArchRegs> specRegs_{};
    std::array<bool, numArchRegs> na_{};
    std::array<SeqNum, numArchRegs> naWriter_{};
    std::array<Cycle, numArchRegs> specReady_{};
    std::uint64_t aheadPc_ = 0;
    bool aheadHalted_ = false;
    /** A strand issued or replayed last tick: the episode is actively
     *  working, so classifyIdle() answers "act now" without the full
     *  stall analysis. Reset optimistically on every normal-mode tick
     *  so a freshly opened episode starts conservative. */
    bool specProgress_ = false;
    Cycle aheadFrontEndReadyAt_ = 0;
    Cycle aheadDivBusyUntil_ = 0;

    // --- normal-mode scoreboard ---
    std::array<Cycle, numArchRegs> regReady_{};
    /** Pending value's latency includes coherence traffic: use-stalls
     *  on it charge the Coherence CPI bucket (normal mode only). */
    std::array<bool, numArchRegs> regCoh_{};
    Cycle frontEndReadyAt_ = 0;
    Cycle divBusyUntil_ = 0;

    // --- coherence / speculative lock elision ---
    /** Set by cohSquash() during a remote core's tick; consumed (as a
     *  rollback) at the top of this core's next cycle. */
    bool pendingCohSquash_ = false;
    /** An AMOSWAP lock acquire is currently elided: the region must
     *  publish atomically (commitAll) and only after the matching
     *  release store has been observed. While active, no further
     *  checkpoints open — the elision owns the single epoch. */
    bool sleActive_ = false;
    Addr sleLockAddr_ = invalidAddr;
    bool sleReleaseSeen_ = false;
    /** One-shot: after an elision aborts, the retry at this PC acquires
     *  the lock conventionally (requester-wins forward progress). */
    std::uint64_t sleSuppressPc_ = ~std::uint64_t{0};

    /** Load-value predictor (core.value_pred). Trained on every
     *  resolved load value; consulted only at ahead-strand miss-defer
     *  points, where a confident prediction keeps rd available. */
    ValuePredictor vpred_;
    /** Predictions standing in for unverified fills right now. While
     *  nonzero, in-speculation stall cycles are provisionally charged
     *  to the value_pred CPI bucket instead of replay. */
    unsigned vpOutstanding_ = 0;

    SeqNum nextSeq_ = 1;
    unsigned nextEpochId_ = 0;
    /** Effective queue capacities (params minus any fault squeeze). */
    unsigned dqCapacity_;
    unsigned ssqCapacity_;
    /** Deferred branches/jumps not yet verified by replay. */
    unsigned unverifiedBranches_ = 0;

    std::deque<Epoch> epochs_;
    std::vector<SsqEntry> ssq_; ///< sorted by seq
    std::vector<SpecLoad> loadLog_;
    /** Values produced by the behind strand, keyed by producer seq.
     *  Spans epochs (a consumer may sit in a younger epoch); cleared at
     *  full commit and rollback. */
    std::unordered_map<SeqNum, ReplayResult> replayResults_;

    /** Committed stores awaiting their timed L1 access. */
    struct PendingStore
    {
        Addr addr;
        unsigned size;
        Cycle issuableAt;
    };
    std::deque<PendingStore> storeBuffer_;

    /** Livelock guard: rollbacks (of any kind, including scout ends)
     *  that re-trigger at the same PC with no retirement progress in
     *  between force one non-speculative execution of that load. The
     *  classic hazard is runahead evicting its own trigger line. */
    std::uint64_t lastFailTriggerPc_ = ~std::uint64_t{0};
    std::uint64_t lastRollbackCommitted_ = ~std::uint64_t{0};
    unsigned consecutiveFails_ = 0;
    std::uint64_t suppressTriggerPc_ = ~std::uint64_t{0};

    /** Cached by nextWakeCycle() for the paired advanceIdle() call. */
    mutable IdleClass idle_;

    // --- stats ---
    Scalar &checkpointsTaken_;
    Scalar &epochsCommitted_;
    Scalar &fullCommits_;
    Scalar &deferredInsts_;
    Scalar &replayedInsts_;
    Scalar &redeferredInsts_;
    Scalar &specLoads_;
    Scalar &failBranch_;
    Scalar &failJump_;
    Scalar &failMem_;
    Scalar &failForced_;
    Scalar &failCoh_;
    Scalar &failVpred_;
    Scalar &vpPredictions_;
    Scalar &vpCorrect_;
    Scalar &sleElisions_;
    Scalar &sleCommits_;
    Scalar &sleAborts_;
    Scalar &scoutEnds_;
    Scalar &livelockSuppressions_;
    Scalar &watchdogDegrades_;
    Scalar &dqFullStallCycles_;
    Scalar &ssqFullStallCycles_;
    Scalar &naJumpStallCycles_;
    Scalar &branchThrottleStallCycles_;
    Scalar &aheadStallUseCycles_;
    Scalar &discardedInsts_;
    Distribution &dqOccDist_;
    Distribution &epochInsts_;
};

} // namespace sst

#endif // SSTSIM_CORE_SST_HH
