/**
 * @file
 * Out-of-order core — the comparator the paper claims SST beats on
 * commercial workloads while spending far less area and power.
 *
 * Classic rename/ROB/issue-queue/LSQ machine. Deliberately *generous*
 * modelling choices (perfect memory disambiguation with store-to-load
 * forwarding, no wrong-path resource pollution) bias results in the
 * OoO core's favour, making the headline SST comparison conservative.
 */

#ifndef SSTSIM_CORE_OOO_HH
#define SSTSIM_CORE_OOO_HH

#include <array>
#include <deque>

#include "core/core.hh"

namespace sst
{

/** ROB-window out-of-order model. */
class OoOCore : public Core
{
  public:
    OoOCore(const CoreParams &params, const Program &program,
            MemoryImage &memory, CorePort &port);

    const char *model() const override { return "ooo"; }

    Cycle nextWakeCycle() const override;

  protected:
    void cycle() override;
    void idleAdvance(Cycle n) override;
    void saveExtra(snap::Writer &w) const override;
    void loadExtra(snap::Reader &r) override;

  private:
    enum class State
    {
        Waiting,  ///< in issue queue, operands possibly outstanding
        Issued,   ///< executing; completes at doneCycle
        Done      ///< result available, waiting to commit
    };

    struct RobEntry
    {
        SeqNum seq = 0;
        std::uint64_t pc = 0;
        Inst inst;
        StepInfo step;
        State state = State::Waiting;
        Cycle doneCycle = invalidCycle;
        Cycle retryAt = 0;         ///< load MSHR-reject backoff
        SeqNum src1Producer = 0;   ///< 0 = value already committed
        SeqNum src2Producer = 0;
        bool isLd = false;
        bool isSt = false;
        bool mispredicted = false;
    };

    void commitStage();
    unsigned issueStage();
    unsigned dispatchStage();

    RobEntry *entryFor(SeqNum seq);
    const RobEntry *entryFor(SeqNum seq) const
    {
        return const_cast<OoOCore *>(this)->entryFor(seq);
    }
    bool producerDone(SeqNum seq, Cycle &readyAt);
    /** Oldest overlapping in-flight store older than @p seq, if any. */
    RobEntry *olderStoreFor(const RobEntry &load);
    const RobEntry *olderStoreFor(const RobEntry &load) const
    {
        return const_cast<OoOCore *>(this)->olderStoreFor(load);
    }

    /** Wake-cycle analysis across commit/issue/dispatch stages. */
    IdleClass classifyIdle() const;

    std::deque<RobEntry> rob_;
    std::array<SeqNum, numArchRegs> lastProducer_{};
    SeqNum nextSeq_ = 1;

    unsigned iqOccupancy_ = 0;
    unsigned lsqOccupancy_ = 0;
    Cycle divBusyUntil_ = 0;
    Cycle frontEndReadyAt_ = 0;
    SeqNum redirectBlockedOn_ = 0; ///< unresolved mispredicted branch
    bool fetchHalted_ = false;     ///< HALT dispatched; drain only
    /** Last tick issued or dispatched something: the pipeline is
     *  working, so classifyIdle() can answer "act now" without the
     *  (ROB-scanning) stall analysis. */
    bool pipeActive_ = false;

    Executor exec_;

    /** Cached by nextWakeCycle() for the paired advanceIdle() call. */
    mutable IdleClass idle_;

    Scalar &robFullCycles_;
    Scalar &iqFullCycles_;
    Scalar &lsqFullCycles_;
    Distribution &robOccupancy_;
};

} // namespace sst

#endif // SSTSIM_CORE_OOO_HH
