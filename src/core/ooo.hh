/**
 * @file
 * Out-of-order core — the comparator the paper claims SST beats on
 * commercial workloads while spending far less area and power.
 *
 * Classic rename/ROB/issue-queue/LSQ machine. Deliberately *generous*
 * modelling choices (perfect memory disambiguation with store-to-load
 * forwarding, no wrong-path resource pollution) bias results in the
 * OoO core's favour, making the headline SST comparison conservative.
 */

#ifndef SSTSIM_CORE_OOO_HH
#define SSTSIM_CORE_OOO_HH

#include <array>
#include <deque>

#include "core/core.hh"

namespace sst
{

/** ROB-window out-of-order model. */
class OoOCore : public Core
{
  public:
    OoOCore(const CoreParams &params, const Program &program,
            MemoryImage &memory, CorePort &port);

    const char *model() const override { return "ooo"; }

  protected:
    void cycle() override;

  private:
    enum class State
    {
        Waiting,  ///< in issue queue, operands possibly outstanding
        Issued,   ///< executing; completes at doneCycle
        Done      ///< result available, waiting to commit
    };

    struct RobEntry
    {
        SeqNum seq = 0;
        std::uint64_t pc = 0;
        Inst inst;
        StepInfo step;
        State state = State::Waiting;
        Cycle doneCycle = invalidCycle;
        Cycle retryAt = 0;         ///< load MSHR-reject backoff
        SeqNum src1Producer = 0;   ///< 0 = value already committed
        SeqNum src2Producer = 0;
        bool isLd = false;
        bool isSt = false;
        bool mispredicted = false;
    };

    void commitStage();
    void issueStage();
    void dispatchStage();

    RobEntry *entryFor(SeqNum seq);
    bool producerDone(SeqNum seq, Cycle &readyAt);
    /** Oldest overlapping in-flight store older than @p seq, if any. */
    RobEntry *olderStoreFor(const RobEntry &load);

    std::deque<RobEntry> rob_;
    std::array<SeqNum, numArchRegs> lastProducer_{};
    SeqNum nextSeq_ = 1;

    unsigned iqOccupancy_ = 0;
    unsigned lsqOccupancy_ = 0;
    Cycle divBusyUntil_ = 0;
    Cycle frontEndReadyAt_ = 0;
    SeqNum redirectBlockedOn_ = 0; ///< unresolved mispredicted branch
    bool fetchHalted_ = false;     ///< HALT dispatched; drain only

    Executor exec_;

    Scalar &robFullCycles_;
    Scalar &iqFullCycles_;
    Scalar &lsqFullCycles_;
    Distribution &robOccupancy_;
};

} // namespace sst

#endif // SSTSIM_CORE_OOO_HH
