#include "core/inorder.hh"

#include "common/logging.hh"

namespace sst
{

InOrderCore::InOrderCore(const CoreParams &params, const Program &program,
                         MemoryImage &memory, CorePort &port)
    : Core(params, program, memory, port),
      exec_(program, memory),
      stallUseCycles_(stats_.addScalar("stall_use_cycles",
                                       "cycles stalled on operand use")),
      stallStoreBufCycles_(stats_.addScalar(
          "stall_storebuf_cycles", "cycles stalled on full store buffer")),
      stallFetchCycles_(stats_.addScalar("stall_fetch_cycles",
                                         "cycles stalled on I-fetch"))
{
}

void
InOrderCore::cycle()
{
    drainStoreBuffer();
    if (arch_.halted)
        return;
    for (unsigned slot = 0; slot < params_.fetchWidth; ++slot) {
        if (arch_.halted || !issueOne())
            break;
    }
}

void
InOrderCore::drainStoreBuffer()
{
    // One store per cycle leaves the buffer when the L1 can take it.
    if (storeBuffer_.empty())
        return;
    PendingStore &st = storeBuffer_.front();
    if (st.issuableAt > now_)
        return;
    auto res = port_.access(AccessType::Store, st.addr, now_);
    if (res.rejected) {
        st.issuableAt = res.retryCycle;
        return;
    }
    storeBuffer_.pop_front();
}

bool
InOrderCore::issueOne()
{
    if (frontEndReadyAt_ > now_) {
        ++stallFetchCycles_;
        noteStall(trace::CpiCat::Fetch);
        return false;
    }
    std::uint64_t pc = arch_.pc;
    Cycle fetchAt = fetchReady(pc);
    if (fetchAt > now_) {
        frontEndReadyAt_ = fetchAt;
        ++stallFetchCycles_;
        noteStall(trace::CpiCat::Fetch);
        return false;
    }

    const Inst &inst = program_.at(pc);
    const OpInfo &info = opInfo(inst.op);

    // Scoreboard: every source must be ready this cycle (x0 always is).
    auto ready = [&](RegId r) { return r == 0 || regReady_[r] <= now_; };
    if ((info.readsRs1 && !ready(inst.rs1))
        || (info.readsRs2 && !ready(inst.rs2))) {
        ++stallUseCycles_;
        noteStall(trace::CpiCat::UseStall);
        return false;
    }

    // Structural hazards before committing to execute.
    if (info.cls == OpClass::IntDiv || info.cls == OpClass::FpDiv) {
        if (divBusyUntil_ > now_) {
            ++stallUseCycles_;
            noteStall(trace::CpiCat::UseStall);
            return false;
        }
    }
    if (isStore(inst.op)
        && storeBuffer_.size() >= params_.storeBufferEntries) {
        ++stallStoreBufCycles_;
        noteStall(trace::CpiCat::StoreBuf);
        return false;
    }
    if (isLoad(inst.op)) {
        // Probe without committing: a rejected load (no MSHR) must retry.
        Addr addr = semantics::effectiveAddr(inst, arch_.reg(inst.rs1));
        auto res = port_.access(AccessType::Load, addr, now_);
        if (res.rejected) {
            ++stallUseCycles_;
            noteStall(trace::CpiCat::UseStall);
            return false;
        }
        exec_.step(arch_);
        ++loadsExecuted_;
        regReady_[inst.rd] = res.readyCycle;
        ++committed_;
        record(trace::TraceKind::Commit, trace::TraceStrand::Main, pc);
        return true;
    }

    StepInfo step = exec_.step(arch_);
    ++committed_;
    record(trace::TraceKind::Commit, trace::TraceStrand::Main, pc);

    switch (info.cls) {
      case OpClass::Store:
        ++storesExecuted_;
        storeBuffer_.push_back(
            PendingStore{step.effAddr, step.memSize, now_});
        break;
      case OpClass::Branch:
      case OpClass::Jump: {
        if (info.writesRd)
            regReady_[inst.rd] = now_ + 1;
        bool correct =
            resolveControl(inst, pc, step.nextPc, step.taken);
        if (!correct)
            frontEndReadyAt_ = now_ + params_.pipelineDepth;
        else if (step.taken)
            frontEndReadyAt_ = now_ + 1; // taken-branch fetch bubble
        break;
      }
      case OpClass::IntDiv:
      case OpClass::FpDiv:
        divBusyUntil_ = now_ + info.latency;
        regReady_[inst.rd] = now_ + info.latency;
        break;
      case OpClass::Other:
        break;
      default:
        if (info.writesRd)
            regReady_[inst.rd] = now_ + info.latency;
        break;
    }
    return true;
}

} // namespace sst
