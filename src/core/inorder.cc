#include "core/inorder.hh"

#include <algorithm>

#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst
{

InOrderCore::InOrderCore(const CoreParams &params, const Program &program,
                         MemoryImage &memory, CorePort &port)
    : Core(params, program, memory, port),
      exec_(program, memory),
      stallUseCycles_(stats_.addScalar("stall_use_cycles",
                                       "cycles stalled on operand use")),
      stallStoreBufCycles_(stats_.addScalar(
          "stall_storebuf_cycles", "cycles stalled on full store buffer")),
      stallFetchCycles_(stats_.addScalar("stall_fetch_cycles",
                                         "cycles stalled on I-fetch"))
{
}

Cycle
InOrderCore::nextWakeCycle() const
{
    idle_ = classifyIdle();
    return idle_.wake;
}

void
InOrderCore::idleAdvance(Cycle n)
{
    // Each skipped cycle would have failed issueOne() at the same
    // condition: one stall-scalar bump and one CPI-stack charge apiece.
    if (idle_.counter)
        *idle_.counter += n;
    cpiStack_.add(idle_.cat, n);
}

Core::IdleClass
InOrderCore::classifyIdle() const
{
    IdleClass ic;
    if (arch_.halted) {
        ic.wake = kWakeNever;
        return ic;
    }
    Cycle wake = kWakeNever;

    // Store-buffer drain: a front entry due now does a port access (a
    // real event, possibly rejected); one due later bounds the skip.
    if (!storeBuffer_.empty()) {
        if (storeBuffer_.front().issuableAt <= now_)
            return ic; // kWakeNow
        wake = std::min(wake, storeBuffer_.front().issuableAt);
    }

    // Mirror issueOne()'s first-failing condition: it decides which
    // stall scalar and CPI category every cycle in the window repeats.
    if (frontEndReadyAt_ > now_) {
        ic.wake = std::min(wake, frontEndReadyAt_);
        ic.cat = trace::CpiCat::Fetch;
        ic.counter = &stallFetchCycles_;
        return ic;
    }
    std::uint64_t pc = arch_.pc;
    Addr line = port_.l1i().lineAddr(program_.instAddr(pc));
    if (line != lastFetchLine_)
        return ic; // new-line fetch probes the port: act now
    if (fetchLineReady_ > now_) {
        ic.wake = std::min(wake, fetchLineReady_);
        ic.cat = trace::CpiCat::Fetch;
        ic.counter = &stallFetchCycles_;
        return ic;
    }

    const Inst &inst = program_.at(pc);
    const OpInfo &info = opInfo(inst.op);
    Cycle op_ready = 0;
    if (info.readsRs1 && inst.rs1 != 0)
        op_ready = std::max(op_ready, regReady_[inst.rs1]);
    if (info.readsRs2 && inst.rs2 != 0)
        op_ready = std::max(op_ready, regReady_[inst.rs2]);
    if (op_ready > now_) {
        bool coh = (info.readsRs1 && inst.rs1 != 0
                    && regReady_[inst.rs1] > now_ && regCoh_[inst.rs1])
                   || (info.readsRs2 && inst.rs2 != 0
                       && regReady_[inst.rs2] > now_ && regCoh_[inst.rs2]);
        ic.wake = std::min(wake, op_ready);
        ic.cat = coh ? trace::CpiCat::Coherence : trace::CpiCat::UseStall;
        ic.counter = &stallUseCycles_;
        return ic;
    }
    if ((info.cls == OpClass::IntDiv || info.cls == OpClass::FpDiv)
        && divBusyUntil_ > now_) {
        ic.wake = std::min(wake, divBusyUntil_);
        ic.cat = trace::CpiCat::UseStall;
        ic.counter = &stallUseCycles_;
        return ic;
    }
    if (isStore(inst.op)
        && storeBuffer_.size() >= params_.storeBufferEntries) {
        // Releases when the buffer drains; wake already bounds the
        // skip at the front entry's drain attempt.
        ic.wake = wake;
        ic.cat = trace::CpiCat::StoreBuf;
        ic.counter = &stallStoreBufCycles_;
        return ic;
    }
    // A load re-probes the port every attempt (rejected or not), and
    // anything else would issue: both are this-cycle actions.
    return ic;
}

void
InOrderCore::cycle()
{
    drainStoreBuffer();
    if (arch_.halted)
        return;
    for (unsigned slot = 0; slot < params_.fetchWidth; ++slot) {
        if (arch_.halted || !issueOne())
            break;
    }
}

void
InOrderCore::drainStoreBuffer()
{
    // One store per cycle leaves the buffer when the L1 can take it.
    if (storeBuffer_.empty())
        return;
    PendingStore &st = storeBuffer_.front();
    if (st.issuableAt > now_)
        return;
    auto res = port_.access(AccessType::Store, st.addr, now_);
    if (res.rejected) {
        st.issuableAt = res.retryCycle;
        return;
    }
    storeBuffer_.pop_front();
}

bool
InOrderCore::issueOne()
{
    if (frontEndReadyAt_ > now_) {
        ++stallFetchCycles_;
        noteStall(trace::CpiCat::Fetch);
        return false;
    }
    std::uint64_t pc = arch_.pc;
    Cycle fetchAt = fetchReady(pc);
    if (fetchAt > now_) {
        frontEndReadyAt_ = fetchAt;
        ++stallFetchCycles_;
        noteStall(trace::CpiCat::Fetch);
        return false;
    }

    const Inst &inst = program_.at(pc);
    const OpInfo &info = opInfo(inst.op);

    // Scoreboard: every source must be ready this cycle (x0 always is).
    auto ready = [&](RegId r) { return r == 0 || regReady_[r] <= now_; };
    if ((info.readsRs1 && !ready(inst.rs1))
        || (info.readsRs2 && !ready(inst.rs2))) {
        bool coh = (info.readsRs1 && !ready(inst.rs1) && regCoh_[inst.rs1])
                   || (info.readsRs2 && !ready(inst.rs2)
                       && regCoh_[inst.rs2]);
        ++stallUseCycles_;
        noteStall(coh ? trace::CpiCat::Coherence : trace::CpiCat::UseStall);
        return false;
    }

    // Structural hazards before committing to execute.
    if (info.cls == OpClass::IntDiv || info.cls == OpClass::FpDiv) {
        if (divBusyUntil_ > now_) {
            ++stallUseCycles_;
            noteStall(trace::CpiCat::UseStall);
            return false;
        }
    }
    if (isStore(inst.op)
        && storeBuffer_.size() >= params_.storeBufferEntries) {
        ++stallStoreBufCycles_;
        noteStall(trace::CpiCat::StoreBuf);
        return false;
    }
    if (isLoad(inst.op)) {
        // Probe without committing: a rejected load (no MSHR) must retry.
        // Atomics go through this path too but access as a Store (the
        // directory must treat them as writers); their memory update
        // happens at execute time, bypassing the store buffer — an
        // acceptable approximation since the atomicity comes from the
        // sequential CMP tick, not the buffer.
        Addr addr = semantics::effectiveAddr(inst, arch_.reg(inst.rs1));
        AccessType type =
            isAtomic(inst.op) ? AccessType::Store : AccessType::Load;
        auto res = port_.access(type, addr, now_);
        if (res.rejected) {
            ++stallUseCycles_;
            noteStall(trace::CpiCat::UseStall);
            return false;
        }
        exec_.step(arch_);
        ++loadsExecuted_;
        if (isAtomic(inst.op))
            ++storesExecuted_;
        regReady_[inst.rd] = res.readyCycle;
        regCoh_[inst.rd] = res.coh;
        ++committed_;
        record(trace::TraceKind::Commit, trace::TraceStrand::Main, pc);
        return true;
    }

    StepInfo step = exec_.step(arch_);
    ++committed_;
    record(trace::TraceKind::Commit, trace::TraceStrand::Main, pc);

    if (info.writesRd)
        regCoh_[inst.rd] = false; // non-load producers are never coherence
    switch (info.cls) {
      case OpClass::Store:
        ++storesExecuted_;
        storeBuffer_.push_back(
            PendingStore{step.effAddr, step.memSize, now_});
        break;
      case OpClass::Branch:
      case OpClass::Jump: {
        if (info.writesRd)
            regReady_[inst.rd] = now_ + 1;
        bool correct =
            resolveControl(inst, pc, step.nextPc, step.taken);
        if (!correct)
            frontEndReadyAt_ = now_ + params_.pipelineDepth;
        else if (step.taken)
            frontEndReadyAt_ = now_ + 1; // taken-branch fetch bubble
        break;
      }
      case OpClass::IntDiv:
      case OpClass::FpDiv:
        divBusyUntil_ = now_ + info.latency;
        regReady_[inst.rd] = now_ + info.latency;
        break;
      case OpClass::Other:
        break;
      default:
        if (info.writesRd)
            regReady_[inst.rd] = now_ + info.latency;
        break;
    }
    return true;
}


namespace
{

template <typename Q>
void
saveStoreBuffer(sst::snap::Writer &w, const Q &q)
{
    w.u32(static_cast<std::uint32_t>(q.size()));
    for (const auto &st : q) {
        w.u64(st.addr);
        w.u32(st.size);
        w.u64(st.issuableAt);
    }
}

template <typename Q>
void
loadStoreBuffer(sst::snap::Reader &r, Q &q)
{
    q.clear();
    std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
        auto &st = q.emplace_back();
        st.addr = r.u64();
        st.size = r.u32();
        st.issuableAt = r.u64();
    }
}

} // namespace

void
InOrderCore::saveExtra(snap::Writer &w) const
{
    for (Cycle rdy : regReady_)
        w.u64(rdy);
    for (bool coh : regCoh_)
        w.b(coh);
    saveStoreBuffer(w, storeBuffer_);
    w.u64(divBusyUntil_);
    w.u64(frontEndReadyAt_);
}

void
InOrderCore::loadExtra(snap::Reader &r)
{
    for (Cycle &rdy : regReady_)
        rdy = r.u64();
    for (auto &&coh : regCoh_)
        coh = r.b();
    loadStoreBuffer(r, storeBuffer_);
    divBusyUntil_ = r.u64();
    frontEndReadyAt_ = r.u64();
}

} // namespace sst
