/**
 * @file
 * Abstract timing-core interface plus shared pipeline plumbing.
 *
 * All four core models (in-order, out-of-order, hardware scout, SST)
 * derive from Core: they consume one Program, share the functional
 * semantics in src/func, issue memory traffic through a CorePort, and
 * are driven cycle-by-cycle via tick(). Every model must end with an
 * architectural state identical to the golden Executor's — the
 * differential property tests enforce this.
 */

#ifndef SSTSIM_CORE_CORE_HH
#define SSTSIM_CORE_CORE_HH

#include <functional>
#include <memory>
#include <string>

#include "branch/predictor.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "func/executor.hh"
#include "mem/hierarchy.hh"
#include "isa/program.hh"
#include "trace/cpistack.hh"
#include "trace/trace.hh"

namespace sst
{

/** Knobs shared by all core models (each model reads the subset it
 *  implements; presets in src/sim set these per machine config). */
struct CoreParams
{
    std::string name = "core";

    // Front end / simple pipeline.
    unsigned fetchWidth = 2;
    unsigned pipelineDepth = 12;   ///< mispredict redirect penalty
    std::string predictor = "gshare";
    /** Per-strand (main/ahead) global-history registers instead of one
     *  interleaved stream (core.strand_history; gshare/tournament). */
    bool strandHistory = false;

    // In-order store buffer.
    unsigned storeBufferEntries = 8;

    // Out-of-order machine.
    unsigned robEntries = 128;
    unsigned issueQueueEntries = 32;
    unsigned lsqEntries = 32;
    unsigned issueWidth = 4;

    // SST machine.
    unsigned checkpoints = 4;
    unsigned dqEntries = 64;
    unsigned ssqEntries = 32;
    /** Load-value prediction in the ahead strand: a confident predicted
     *  value stands in for an L1-missing load's NA result until the DQ
     *  replay verifies it on fill ("off"|"last"|"stride"). */
    std::string valuePred = "off";
    /** Hardware-scout mode: discard all speculative work on miss return
     *  (1-checkpoint runahead prefetcher). */
    bool discardSpecWork = false;

    // --- SST design-space knobs (ablations; defaults = paper config) --
    /** Only enter speculation for loads that also miss the L2 (short
     *  L2 hits are cheaper to scoreboard than to checkpoint). */
    bool deferOnL2MissOnly = false;
    /** Max deferred (predicted-unverified) branches per speculation
     *  region before the ahead strand stalls instead of guessing.
     *  0 = unlimited (the default aggressive policy). */
    unsigned maxDeferredBranches = 0;
    /** Track speculative-load/deferred-store conflicts at cache-line
     *  granularity (the realistic s-bit mechanism: cheaper hardware,
     *  false-sharing aborts) instead of exact byte ranges. */
    bool lineGranularConflicts = false;
    /** Speculative lock elision: execute past an AMOSWAP lock acquire
     *  from a checkpoint instead of taking the lock, squashing when a
     *  remote write hits the speculative read set. SST-only; needs a
     *  coherent memory system to be meaningful. */
    bool elideLocks = false;
};

/** Base class: owns arch state, predictor, fetch timing and stats. */
class Core
{
  public:
    Core(const CoreParams &params, const Program &program,
         MemoryImage &memory, CorePort &port);
    virtual ~Core() = default;

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    /** Advance one clock cycle. */
    void tick();

    /** nextWakeCycle(): "this cycle" — the core can act right now, so
     *  the run loop must tick it naively. */
    static constexpr Cycle kWakeNow = 0;
    /** nextWakeCycle(): "never" — the core is halted. */
    static constexpr Cycle kWakeNever = invalidCycle;

    /**
     * Wake-cycle protocol. Returns the earliest future cycle at which
     * this core can possibly make progress (or change any observable
     * state, including per-cycle stall counters that differ from the
     * current stalled shape): the blocking fill's ready cycle for the
     * scoreboarded models, the earliest of ROB-head completion / IQ
     * wakeup for OoO, the min over ahead-strand blocker / DQ
     * replay-ready / divide completion for SST. Anything the core would
     * do *this* cycle — including stall paths that re-probe the cache
     * port and therefore mutate hierarchy stats — reports kWakeNow.
     *
     * Contract: call immediately after a tick() that retired nothing;
     * a subsequent advanceIdle(n) with now+n <= nextWakeCycle() must
     * leave the core byte-identical (stats, traces, state) to n naive
     * ticks. The base implementation never skips.
     */
    virtual Cycle nextWakeCycle() const { return kWakeNow; }

    /**
     * Skip @p n stalled cycles in one step: replays exactly the stat
     * increments (stall scalars, CPI-stack attribution, occupancy
     * distribution samples) the naive per-cycle loop would have made,
     * then advances the cycle counters. Only valid immediately after
     * the nextWakeCycle() call whose classification it consumes.
     */
    void advanceIdle(Cycle n);

    /** True once HALT has architecturally committed. */
    bool halted() const { return arch_.halted; }

    Cycle cycles() const { return now_; }
    std::uint64_t instsRetired() const { return committed_.value(); }
    double ipc() const;

    const ArchState &archState() const { return arch_; }
    StatGroup &stats() { return stats_; }
    const CoreParams &params() const { return params_; }
    CorePort &port() { return port_; }

    /** Short model identifier ("inorder", "ooo", "scout", "sst"). */
    virtual const char *model() const = 0;

    /**
     * Watchdog escalation hook: abandon in-flight speculation and fall
     * back to non-speculative progress (mirroring ROCK's own fallback
     * for pathological speculation). @return true when the model had
     * speculative state to degrade; models without speculation return
     * false and the watchdog moves to its next escalation step.
     */
    virtual bool degradeSpeculation() { return false; }

    /**
     * Start execution from @p state at absolute cycle @p start_cycle
     * instead of from reset. Used by the sampled-simulation runner: the
     * cycle offset keeps this core's clock aligned with the shared
     * memory system's busy-until state left by earlier samples. Must be
     * called before the first tick().
     */
    void warmStart(const ArchState &state, Cycle start_cycle);

    /** First cycle of this core's execution (0 unless warm-started). */
    Cycle startCycle() const { return startCycle_; }

    /**
     * Attach a pipeline-event trace sink. When set, the core emits one
     * line per microarchitectural event ("C123 TRIGGER pc=7 ..."),
     * which the asm_playground example renders as a timeline. Null
     * disables tracing (the default; tracing is not free).
     */
    void setTraceSink(std::function<void(const std::string &)> sink)
    {
        traceSink_ = std::move(sink);
    }

    /**
     * Attach a structured event ring (non-owning; null detaches). Only
     * effective in builds with SST_TRACE=1 — the recording call sites
     * compile out otherwise and the buffer simply stays empty.
     */
    void attachTraceBuffer(trace::TraceBuffer *buf) { traceBuf_ = buf; }

    /** Per-category cycle attribution (see trace/cpistack.hh). */
    trace::CpiStack &cpiStack() { return cpiStack_; }

    /**
     * Flush any provisionally attributed cycles so the CPI-stack
     * categories sum exactly to the cycle count. Idempotent; called by
     * Machine::run at harvest (models with in-flight speculation hold
     * cycles pending until the region commits or rolls back).
     */
    virtual void finalizeAttribution() {}

    /**
     * Serialize complete core state: committed arch state, clocks,
     * fetch-line tracking, predictor/BTB/RAS, the whole stats tree
     * (which includes the CPI stack and this core's port stats), then
     * the model's extra state via saveExtra(). Runtime attachments
     * (trace sink, trace buffer pointer) are not state and are not
     * serialized; cached wake classifications are recomputed.
     */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  protected:
    /** True when someone is listening; guard any formatting work. */
    bool tracing() const { return static_cast<bool>(traceSink_); }

    /** Emit one trace event, prefixed with the current cycle. */
    void trace(const char *fmt, ...) __attribute__((format(printf, 2, 3)));

    /** Record one structured event (no-op with SST_TRACE=0). */
    void record(trace::TraceKind kind, trace::TraceStrand strand,
                std::uint64_t pc, SeqNum seq = 0, std::uint32_t arg = 0)
    {
#if SST_TRACE
        if (traceBuf_)
            traceBuf_->record(
                trace::TraceEvent{now_, pc, seq, arg, kind, strand});
#else
        (void)kind; (void)strand; (void)pc; (void)seq; (void)arg;
#endif
    }

    /**
     * Classify this cycle's stall for the CPI stack. First call per
     * cycle wins (the oldest blocking condition is the one that
     * mattered); retirement overrides any noted stall with Base.
     */
    void noteStall(trace::CpiCat cat)
    {
        if (stallCat_ == trace::CpiCat::Other)
            stallCat_ = cat;
    }

    /**
     * Charge the cycle that just ran to a CPI-stack category. The
     * default charges Base when @p retired > 0 and the noted stall
     * otherwise; SST overrides it to hold speculation cycles pending
     * until the region's fate (commit or rollback) is known.
     */
    virtual void accountCycle(std::uint64_t retired)
    {
        cpiStack_.add(retired ? trace::CpiCat::Base : stallCat_);
    }

    /**
     * Shared classification of a stalled window, produced by each
     * model's nextWakeCycle() analysis and consumed by idleAdvance():
     * when the window's first-failing condition releases (wake) and
     * which per-cycle accounting every cycle inside it repeats.
     */
    struct IdleClass
    {
        Cycle wake = kWakeNow;
        /** CPI category each skipped cycle charges (what noteStall
         *  would have recorded). */
        trace::CpiCat cat = trace::CpiCat::Other;
        /** Per-cycle stall scalar to bulk-increment, if any. */
        Scalar *counter = nullptr;
    };

    /**
     * Model hook for advanceIdle(): account @p n skipped cycles exactly
     * as n naive stalled ticks would have. Models that return a future
     * nextWakeCycle() must override this; the base panics because the
     * base nextWakeCycle() never allows a skip.
     */
    virtual void idleAdvance(Cycle n);

    /** Model-specific snapshot state (scoreboards, queues, epochs). */
    virtual void saveExtra(snap::Writer &) const {}
    virtual void loadExtra(snap::Reader &) {}

  private:
    std::function<void(const std::string &)> traceSink_;
    Cycle startCycle_ = 0;

  protected:
    trace::TraceBuffer *traceBuf_ = nullptr;
    /** Stall category noted for the in-flight cycle (reset each tick). */
    trace::CpiCat stallCat_ = trace::CpiCat::Other;

    /** One cycle of model-specific work (now_ already advanced). */
    virtual void cycle() = 0;

    /**
     * Fetch-timing helper: returns the cycle at which the instruction at
     * @p pc can enter the pipeline, issuing an I-cache access when @p pc
     * crosses into a new line.
     */
    Cycle fetchReady(std::uint64_t pc);

    /** Train predictor/BTB and decide the redirect penalty. @return true
     *  when the front end predicted this control transfer correctly. */
    bool resolveControl(const Inst &inst, std::uint64_t pc,
                        std::uint64_t nextPc, bool taken);

    const CoreParams params_;
    const Program &program_;
    MemoryImage &memory_;
    CorePort &port_;

    /** Committed architectural state. */
    ArchState arch_;

    Cycle now_ = 0;

    std::unique_ptr<BranchPredictor> predictor_;
    Btb btb_;
    ReturnAddressStack ras_;

    StatGroup stats_;
    trace::CpiStack cpiStack_;
    Scalar &committed_;
    Scalar &cyclesStat_;
    Scalar &branches_;
    Scalar &mispredicts_;
    Scalar &loadsExecuted_;
    Scalar &storesExecuted_;

    /** I-fetch line tracking. */
    Addr lastFetchLine_ = invalidAddr;
    Cycle fetchLineReady_ = 0;
};

} // namespace sst

#endif // SSTSIM_CORE_CORE_HH
