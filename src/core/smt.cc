#include "core/smt.hh"

#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst
{

SmtCore::SmtCore(const CoreParams &params,
                 std::array<const Program *, numThreads> programs,
                 std::array<MemoryImage *, numThreads> memories,
                 CorePort &port)
    : params_(params),
      port_(port),
      predictor_(makePredictor(params.predictor)),
      stats_(params.name),
      cyclesStat_(stats_.addScalar("cycles", "simulated cycles")),
      branches_(stats_.addScalar("branches", "conditional branches")),
      mispredicts_(stats_.addScalar("mispredicts", "mispredictions")),
      slotConflictCycles_(stats_.addScalar(
          "slot_donations",
          "issue slots a stalled context donated to the other"))
{
    for (unsigned t = 0; t < numThreads; ++t) {
        Context &ctx = contexts_[t];
        fatal_if(!programs[t] || !memories[t],
                 "SmtCore context %u missing program/memory", t);
        ctx.program = programs[t];
        ctx.memory = memories[t];
        // Distinct "physical" windows inside the shared caches.
        ctx.salt = static_cast<Addr>(t) << 29;
        ctx.committed = &stats_.addScalar(
            "t" + std::to_string(t) + "_committed",
            "instructions retired by context " + std::to_string(t));
        ctx.ras = std::make_unique<ReturnAddressStack>();
    }
    stats_.addFormula("aggregate_ipc", "both contexts", [this] {
        return aggregateIpc();
    });
    stats_.addChild(port.stats());
}

bool
SmtCore::halted() const
{
    for (const auto &ctx : contexts_)
        if (!ctx.arch.halted)
            return false;
    return true;
}

bool
SmtCore::threadHalted(unsigned tid) const
{
    return contexts_.at(tid).arch.halted;
}

std::uint64_t
SmtCore::instsRetired(unsigned tid) const
{
    return contexts_.at(tid).committed->value();
}

std::uint64_t
SmtCore::totalInstsRetired() const
{
    std::uint64_t n = 0;
    for (const auto &ctx : contexts_)
        n += ctx.committed->value();
    return n;
}

double
SmtCore::aggregateIpc() const
{
    return now_ ? static_cast<double>(totalInstsRetired())
                      / static_cast<double>(now_)
                : 0.0;
}

const ArchState &
SmtCore::archState(unsigned tid) const
{
    return contexts_.at(tid).arch;
}

void
SmtCore::tick()
{
    if (halted())
        return;
    std::uint64_t before = totalInstsRetired();
    stallCat_ = trace::CpiCat::Other;
    drainStoreBuffer();

    // Round-robin priority; a blocked context donates its slots.
    unsigned first = static_cast<unsigned>(now_ % numThreads);
    unsigned slots = params_.fetchWidth;
    bool blocked[numThreads] = {};
    while (slots > 0) {
        bool issued_any = false;
        for (unsigned k = 0; k < numThreads && slots > 0; ++k) {
            unsigned tid = (first + k) % numThreads;
            Context &ctx = contexts_[tid];
            if (ctx.arch.halted || blocked[tid])
                continue;
            if (issueOne(ctx)) {
                --slots;
                issued_any = true;
                if (k != 0)
                    ++slotConflictCycles_;
            } else {
                blocked[tid] = true;
            }
        }
        if (!issued_any)
            break;
    }

    cpiStack_.add(totalInstsRetired() > before ? trace::CpiCat::Base
                                               : stallCat_);
    ++now_;
    ++cyclesStat_;
}

void
SmtCore::drainStoreBuffer()
{
    if (storeBuffer_.empty())
        return;
    PendingStore &st = storeBuffer_.front();
    if (st.issuableAt > now_)
        return;
    auto res = port_.access(AccessType::Store, st.addr, now_);
    if (res.rejected) {
        st.issuableAt = res.retryCycle;
        return;
    }
    storeBuffer_.pop_front();
}

Cycle
SmtCore::fetchReady(Context &ctx)
{
    Addr addr = ctx.program->instAddr(ctx.arch.pc) + ctx.salt;
    Addr line = port_.l1i().lineAddr(addr);
    if (line == ctx.lastFetchLine)
        return ctx.fetchLineReady;
    auto res = port_.access(AccessType::InstFetch, addr, now_);
    if (res.rejected)
        return res.retryCycle;
    ctx.lastFetchLine = line;
    ctx.fetchLineReady = res.l1Hit ? now_ : res.readyCycle;
    return ctx.fetchLineReady;
}

bool
SmtCore::issueOne(Context &ctx)
{
    if (ctx.frontEndReadyAt > now_) {
        noteStall(trace::CpiCat::Fetch);
        return false;
    }
    std::uint64_t pc = ctx.arch.pc;
    Cycle fetch_at = fetchReady(ctx);
    if (fetch_at > now_) {
        ctx.frontEndReadyAt = fetch_at;
        noteStall(trace::CpiCat::Fetch);
        return false;
    }

    const Inst &inst = ctx.program->at(pc);
    const OpInfo &info = opInfo(inst.op);

    auto ready = [&](RegId r) {
        return r == 0 || ctx.regReady[r] <= now_;
    };
    if ((info.readsRs1 && !ready(inst.rs1))
        || (info.readsRs2 && !ready(inst.rs2))) {
        noteStall(trace::CpiCat::UseStall);
        return false;
    }

    if ((info.cls == OpClass::IntDiv || info.cls == OpClass::FpDiv)
        && divBusyUntil_ > now_) {
        noteStall(trace::CpiCat::UseStall);
        return false;
    }
    if (isStore(inst.op)
        && storeBuffer_.size() >= params_.storeBufferEntries) {
        noteStall(trace::CpiCat::StoreBuf);
        return false;
    }

    std::uint32_t tid =
        static_cast<std::uint32_t>(&ctx - contexts_.data());
    if (isLoad(inst.op)) {
        Addr addr = semantics::effectiveAddr(inst, ctx.arch.reg(inst.rs1))
                    + ctx.salt;
        auto res = port_.access(AccessType::Load, addr, now_);
        if (res.rejected) {
            noteStall(trace::CpiCat::UseStall);
            return false;
        }
        Executor exec(*ctx.program, *ctx.memory);
        exec.step(ctx.arch);
        ctx.regReady[inst.rd] = res.readyCycle;
        ++*ctx.committed;
        record(trace::TraceKind::Commit, pc, 0, tid);
        return true;
    }

    Executor exec(*ctx.program, *ctx.memory);
    StepInfo step = exec.step(ctx.arch);
    ++*ctx.committed;
    record(trace::TraceKind::Commit, pc, 0, tid);

    switch (info.cls) {
      case OpClass::Store:
        storeBuffer_.push_back(
            PendingStore{step.effAddr + ctx.salt, step.memSize, now_});
        break;
      case OpClass::Branch: {
        ++branches_;
        bool pred = predictor_->predict(pc);
        predictor_->update(pc, step.taken);
        bool target_known = true;
        if (step.taken) {
            target_known = btb_.lookup(pc) == step.nextPc;
            btb_.update(pc, step.nextPc);
        }
        bool correct = pred == step.taken && target_known;
        if (!correct) {
            ++mispredicts_;
            ctx.frontEndReadyAt = now_ + params_.pipelineDepth;
        } else if (step.taken) {
            ctx.frontEndReadyAt = now_ + 1;
        }
        break;
      }
      case OpClass::Jump: {
        if (info.writesRd)
            ctx.regReady[inst.rd] = now_ + 1;
        bool correct;
        if (inst.op == Opcode::JAL) {
            correct = btb_.lookup(pc) == step.nextPc;
            btb_.update(pc, step.nextPc);
            if (inst.rd != 0)
                ctx.ras->push(pc + 1);
        } else {
            bool is_return =
                inst.rd == 0 && inst.rs1 == 1 && inst.imm == 0;
            std::uint64_t predicted =
                is_return ? ctx.ras->pop() : btb_.lookup(pc);
            btb_.update(pc, step.nextPc);
            if (inst.rd != 0)
                ctx.ras->push(pc + 1);
            correct = predicted == step.nextPc;
        }
        if (!correct) {
            ++mispredicts_;
            ctx.frontEndReadyAt = now_ + params_.pipelineDepth;
        } else {
            ctx.frontEndReadyAt = now_ + 1;
        }
        break;
      }
      case OpClass::IntDiv:
      case OpClass::FpDiv:
        divBusyUntil_ = now_ + info.latency;
        ctx.regReady[inst.rd] = now_ + info.latency;
        break;
      case OpClass::Other:
        break;
      default:
        if (info.writesRd)
            ctx.regReady[inst.rd] = now_ + info.latency;
        break;
    }
    return true;
}


void
SmtCore::save(snap::Writer &w) const
{
    w.tag("smtcore");
    w.u64(now_);
    for (const Context &ctx : contexts_) {
        ctx.arch.save(w);
        for (Cycle rdy : ctx.regReady)
            w.u64(rdy);
        w.u64(ctx.frontEndReadyAt);
        w.u64(ctx.lastFetchLine);
        w.u64(ctx.fetchLineReady);
        w.u64(ctx.salt);
        ctx.ras->save(w);
    }
    predictor_->save(w);
    btb_.save(w);
    w.u64(divBusyUntil_);
    w.u32(static_cast<std::uint32_t>(storeBuffer_.size()));
    for (const PendingStore &st : storeBuffer_) {
        w.u64(st.addr);
        w.u32(st.size);
        w.u64(st.issuableAt);
    }
    w.u8(static_cast<std::uint8_t>(stallCat_));
    stats_.save(w);
}

void
SmtCore::load(snap::Reader &r)
{
    r.tag("smtcore");
    now_ = r.u64();
    for (Context &ctx : contexts_) {
        ctx.arch.load(r);
        for (Cycle &rdy : ctx.regReady)
            rdy = r.u64();
        ctx.frontEndReadyAt = r.u64();
        ctx.lastFetchLine = r.u64();
        ctx.fetchLineReady = r.u64();
        ctx.salt = r.u64();
        ctx.ras->load(r);
    }
    predictor_->load(r);
    btb_.load(r);
    divBusyUntil_ = r.u64();
    storeBuffer_.clear();
    std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
        PendingStore &st = storeBuffer_.emplace_back();
        st.addr = r.u64();
        st.size = r.u32();
        st.issuableAt = r.u64();
    }
    std::uint8_t cat = r.u8();
    fatal_if(cat >= static_cast<std::uint8_t>(trace::CpiCat::NumCats),
             "snapshot: bad CPI category %u (corrupt snapshot)", cat);
    stallCat_ = static_cast<trace::CpiCat>(cat);
    stats_.load(r);
}

} // namespace sst
