/**
 * @file
 * In-order, stall-on-use scoreboard core — the ROCK base pipeline
 * without speculation. Loads are non-blocking (hit-under-miss via the
 * MSHRs); the pipeline stalls only when an instruction *uses* a value
 * that is not ready. Stores retire into a finite store buffer that
 * drains to the L1 in the background.
 */

#ifndef SSTSIM_CORE_INORDER_HH
#define SSTSIM_CORE_INORDER_HH

#include <array>
#include <deque>

#include "core/core.hh"

namespace sst
{

/** The baseline core every speedup in the benches is normalised to. */
class InOrderCore : public Core
{
  public:
    InOrderCore(const CoreParams &params, const Program &program,
                MemoryImage &memory, CorePort &port);

    const char *model() const override { return "inorder"; }

    Cycle nextWakeCycle() const override;

  protected:
    void cycle() override;
    void idleAdvance(Cycle n) override;
    void saveExtra(snap::Writer &w) const override;
    void loadExtra(snap::Reader &r) override;

  private:
    /** Try to issue the instruction at arch_.pc. @return true on issue. */
    bool issueOne();
    void drainStoreBuffer();

    /** Mirror issueOne()'s first-failing condition for the wake-cycle
     *  protocol (see Core::nextWakeCycle). */
    IdleClass classifyIdle() const;

    /** Cycle at which each architectural register's value is ready. */
    std::array<Cycle, numArchRegs> regReady_{};

    /** True when the register's pending value comes from a load whose
     *  latency includes coherence traffic (invalidation/intervention or
     *  a line lost to a remote write) — use-stalls on it are charged to
     *  the Coherence CPI bucket instead of UseStall. */
    std::array<bool, numArchRegs> regCoh_{};

    /** Pending stores: architecturally applied, timing queued. */
    struct PendingStore
    {
        Addr addr;
        unsigned size;
        Cycle issuableAt;
    };
    std::deque<PendingStore> storeBuffer_;

    /** Unpipelined divider busy-until. */
    Cycle divBusyUntil_ = 0;
    /** Front-end redirect stall (mispredict/branch resolution). */
    Cycle frontEndReadyAt_ = 0;

    Executor exec_;

    /** Last classification, cached by nextWakeCycle() for the paired
     *  advanceIdle() call. */
    mutable IdleClass idle_;

    Scalar &stallUseCycles_;
    Scalar &stallStoreBufCycles_;
    Scalar &stallFetchCycles_;
};

} // namespace sst

#endif // SSTSIM_CORE_INORDER_HH
