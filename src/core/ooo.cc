#include "core/ooo.hh"

#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst
{

OoOCore::OoOCore(const CoreParams &params, const Program &program,
                 MemoryImage &memory, CorePort &port)
    : Core(params, program, memory, port),
      exec_(program, memory),
      robFullCycles_(stats_.addScalar("rob_full_cycles",
                                      "dispatch stalls on full ROB")),
      iqFullCycles_(stats_.addScalar("iq_full_cycles",
                                     "dispatch stalls on full issue Q")),
      lsqFullCycles_(stats_.addScalar("lsq_full_cycles",
                                      "dispatch stalls on full LSQ")),
      robOccupancy_(stats_.addDist("rob_occupancy",
                                   "ROB entries in use per cycle",
                                   params.robEntries + 1, 16))
{
}

void
OoOCore::cycle()
{
    robOccupancy_.sample(rob_.size());
    commitStage();
    if (arch_.halted)
        return;
    unsigned issued = issueStage();
    unsigned dispatched = dispatchStage();
    pipeActive_ = issued > 0 || dispatched > 0;
}

Cycle
OoOCore::nextWakeCycle() const
{
    idle_ = classifyIdle();
    return idle_.wake;
}

void
OoOCore::idleAdvance(Cycle n)
{
    // Every skipped cycle re-samples the frozen ROB occupancy, bumps at
    // most one dispatch full-queue counter, and charges the commit
    // stage's stall category. (Issued->Done flips are left unapplied:
    // every consumer treats Issued-with-elapsed-doneCycle as Done.)
    robOccupancy_.sample(rob_.size(), n);
    if (idle_.counter)
        *idle_.counter += n;
    cpiStack_.add(idle_.cat, n);
}

Core::IdleClass
OoOCore::classifyIdle() const
{
    IdleClass ic;
    if (arch_.halted) {
        ic.wake = kWakeNever;
        return ic;
    }
    // An issue or dispatch last tick means in-flight work is advancing:
    // answer "act now" without walking the ROB. (A window can only
    // begin on a tick where nothing moved, and that tick reaches the
    // analysis below.)
    if (pipeActive_)
        return ic;
    Cycle wake = kWakeNever;

    // Commit stage decides the window's CPI category; a committable
    // head acts this cycle (a store head even re-probes the port).
    if (rob_.empty()) {
        ic.cat = trace::CpiCat::Fetch;
    } else {
        const RobEntry &head = rob_.front();
        ic.cat = trace::CpiCat::UseStall;
        if (head.state != State::Waiting) {
            if (head.doneCycle <= now_)
                return ic; // commit or store-retry: act now
            wake = std::min(wake, head.doneCycle);
        }
        // A Waiting head wakes through the issue scan below.
    }

    // Dispatch stage (cheap; mirrors the stalled slot-0 iteration). The
    // full-queue counters release via commit/issue events the other
    // stages already bound; the fetch timers add their own candidates.
    if (!fetchHalted_ && redirectBlockedOn_ == 0) {
        if (frontEndReadyAt_ > now_) {
            wake = std::min(wake, frontEndReadyAt_);
        } else if (rob_.size() >= params_.robEntries) {
            ic.counter = &robFullCycles_;
        } else if (iqOccupancy_ >= params_.issueQueueEntries) {
            ic.counter = &iqFullCycles_;
        } else if (isMem(program_.at(arch_.pc).op)
                   && lsqOccupancy_ >= params_.lsqEntries) {
            ic.counter = &lsqFullCycles_;
        } else {
            Addr line =
                port_.l1i().lineAddr(program_.instAddr(arch_.pc));
            if (line != lastFetchLine_)
                return ic; // new-line fetch probes the port: act now
            if (fetchLineReady_ <= now_)
                return ic; // dispatch proceeds this cycle
            wake = std::min(wake, fetchLineReady_);
        }
    }

    // Issue stage: earliest cycle any Waiting entry could issue. An
    // entry whose producer is itself Waiting wakes via that producer's
    // issue, which the scan already bounds.
    for (const RobEntry &e : rob_) {
        if (e.state != State::Waiting)
            continue;
        Cycle t = e.retryAt;
        bool producer_waiting = false;
        auto producer = [&](SeqNum seq) {
            if (seq == 0)
                return;
            const RobEntry *p = entryFor(seq);
            if (!p)
                return; // already committed
            if (p->state == State::Waiting)
                producer_waiting = true;
            else
                t = std::max(t, p->doneCycle);
        };
        producer(e.src1Producer);
        producer(e.src2Producer);
        if (producer_waiting)
            continue;
        const OpInfo &info = opInfo(e.inst.op);
        if (info.cls == OpClass::IntDiv || info.cls == OpClass::FpDiv)
            t = std::max(t, divBusyUntil_);
        if (e.isLd) {
            const RobEntry *st = olderStoreFor(e);
            if (st && st->state == State::Waiting)
                continue; // forwards once the store issues
        }
        if (t <= now_) {
            ic.wake = kWakeNow;
            return ic; // issues this cycle
        }
        wake = std::min(wake, t);
    }

    ic.wake = wake;
    return ic;
}

OoOCore::RobEntry *
OoOCore::entryFor(SeqNum seq)
{
    if (rob_.empty() || seq < rob_.front().seq
        || seq > rob_.back().seq)
        return nullptr;
    return &rob_[seq - rob_.front().seq];
}

bool
OoOCore::producerDone(SeqNum seq, Cycle &readyAt)
{
    if (seq == 0)
        return true;
    RobEntry *prod = entryFor(seq);
    if (!prod)
        return true; // already committed
    if (prod->state == State::Waiting)
        return false;
    readyAt = std::max(readyAt, prod->doneCycle);
    return prod->doneCycle <= now_;
}

OoOCore::RobEntry *
OoOCore::olderStoreFor(const RobEntry &load)
{
    RobEntry *best = nullptr;
    for (auto &e : rob_) {
        if (e.seq >= load.seq)
            break;
        if (!e.isSt)
            continue;
        Addr lo = std::max(e.step.effAddr, load.step.effAddr);
        Addr hi = std::min(e.step.effAddr + e.step.memSize,
                           load.step.effAddr + load.step.memSize);
        if (lo < hi)
            best = &e; // youngest older overlapping store wins
    }
    return best;
}

void
OoOCore::commitStage()
{
    unsigned width = params_.fetchWidth;
    if (rob_.empty())
        noteStall(trace::CpiCat::Fetch);
    while (width-- > 0 && !rob_.empty()) {
        RobEntry &head = rob_.front();
        if (head.state == State::Waiting || head.doneCycle > now_) {
            noteStall(trace::CpiCat::UseStall);
            break;
        }
        if (head.isSt) {
            // Retire the store into the cache; a rejected access stalls
            // commit (finite write resources).
            auto res =
                port_.access(AccessType::Store, head.step.effAddr, now_);
            if (res.rejected) {
                noteStall(trace::CpiCat::StoreBuf);
                break;
            }
            ++storesExecuted_;
        }
        if (head.inst.op == Opcode::HALT)
            arch_.halted = true;
        if (lastProducer_[head.inst.rd] == head.seq)
            lastProducer_[head.inst.rd] = 0;
        ++committed_;
        record(trace::TraceKind::Commit, trace::TraceStrand::Main,
               head.pc, head.seq);
        rob_.pop_front();
        if (arch_.halted)
            return;
    }
}

unsigned
OoOCore::issueStage()
{
    unsigned slots = params_.issueWidth;
    unsigned issued = 0;
    for (auto &e : rob_) {
        if (slots == 0)
            break;
        if (e.state == State::Issued && e.doneCycle <= now_)
            e.state = State::Done;
        if (e.state != State::Waiting)
            continue;
        if (e.retryAt > now_)
            continue;

        Cycle readyAt = 0;
        bool r1 = producerDone(e.src1Producer, readyAt);
        bool r2 = producerDone(e.src2Producer, readyAt);
        if (!r1 || !r2)
            continue;

        const OpInfo &info = opInfo(e.inst.op);
        if ((info.cls == OpClass::IntDiv || info.cls == OpClass::FpDiv)
            && divBusyUntil_ > now_)
            continue;

        if (e.isLd) {
            if (RobEntry *st = olderStoreFor(e)) {
                if (st->state == State::Waiting)
                    continue; // store data not ready; try later
                // Forward from the in-flight store.
                e.doneCycle = std::max(now_, st->doneCycle) + 1;
            } else {
                auto res = port_.access(AccessType::Load,
                                        e.step.effAddr, now_);
                if (res.rejected) {
                    e.retryAt = res.retryCycle;
                    continue;
                }
                e.doneCycle = res.readyCycle;
                ++loadsExecuted_;
            }
        } else if (e.isSt) {
            e.doneCycle = now_ + 1; // address+data captured
        } else {
            e.doneCycle = now_ + info.latency;
            if (info.cls == OpClass::IntDiv || info.cls == OpClass::FpDiv)
                divBusyUntil_ = e.doneCycle;
        }

        e.state = State::Issued;
        --slots;
        ++issued;
        --iqOccupancy_;

        // A mispredicted control instruction redirects fetch when it
        // resolves.
        if (e.mispredicted && redirectBlockedOn_ == e.seq) {
            frontEndReadyAt_ =
                std::max(frontEndReadyAt_,
                         e.doneCycle + params_.pipelineDepth);
            redirectBlockedOn_ = 0;
        }
    }

    // LSQ entries free at commit; model occupancy from ROB contents.
    lsqOccupancy_ = 0;
    for (auto &e : rob_)
        if (e.isLd || e.isSt)
            ++lsqOccupancy_;
    return issued;
}

unsigned
OoOCore::dispatchStage()
{
    unsigned dispatched = 0;
    if (fetchHalted_ || redirectBlockedOn_ != 0
        || frontEndReadyAt_ > now_)
        return dispatched;

    for (unsigned slot = 0; slot < params_.fetchWidth; ++slot) {
        if (rob_.size() >= params_.robEntries) {
            ++robFullCycles_;
            return dispatched;
        }
        if (iqOccupancy_ >= params_.issueQueueEntries) {
            ++iqFullCycles_;
            return dispatched;
        }
        std::uint64_t pc = arch_.pc;
        const Inst &inst = program_.at(pc);
        if (isMem(inst.op) && lsqOccupancy_ >= params_.lsqEntries) {
            ++lsqFullCycles_;
            return dispatched;
        }
        Cycle fetchAt = fetchReady(pc);
        if (fetchAt > now_) {
            frontEndReadyAt_ = fetchAt;
            return dispatched;
        }

        RobEntry e;
        e.seq = nextSeq_++;
        e.pc = pc;
        e.inst = inst;
        e.src1Producer =
            opInfo(inst.op).readsRs1 ? lastProducer_[inst.rs1] : 0;
        e.src2Producer =
            opInfo(inst.op).readsRs2 ? lastProducer_[inst.rs2] : 0;
        e.isLd = isLoad(inst.op);
        e.isSt = isStore(inst.op);

        // Functional execution at dispatch (fetch is always on the
        // correct path in this model).
        e.step = exec_.step(arch_);
        if (e.step.halted) {
            // Drain the window; commit of HALT ends the simulation.
            arch_.halted = false;
            fetchHalted_ = true;
        }

        if (opInfo(inst.op).writesRd && inst.rd != 0)
            lastProducer_[inst.rd] = e.seq;
        ++iqOccupancy_;
        if (e.isLd || e.isSt)
            ++lsqOccupancy_;

        bool isCtrl = isControl(inst.op);
        if (isCtrl) {
            bool correct =
                resolveControl(inst, pc, e.step.nextPc, e.step.taken);
            if (!correct) {
                e.mispredicted = true;
                redirectBlockedOn_ = e.seq;
            }
        }
        rob_.push_back(std::move(e));
        ++dispatched;

        if (fetchHalted_ || redirectBlockedOn_ != 0)
            return dispatched;
        if (isCtrl && rob_.back().step.taken) {
            // Taken-branch fetch bubble ends the dispatch group.
            frontEndReadyAt_ = now_ + 1;
            return dispatched;
        }
    }
    return dispatched;
}


void
OoOCore::saveExtra(snap::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(rob_.size()));
    for (const RobEntry &e : rob_) {
        w.u64(e.seq);
        w.u64(e.pc);
        w.u64(e.inst.encode());
        e.step.save(w);
        w.u8(static_cast<std::uint8_t>(e.state));
        w.u64(e.doneCycle);
        w.u64(e.retryAt);
        w.u64(e.src1Producer);
        w.u64(e.src2Producer);
        w.b(e.isLd);
        w.b(e.isSt);
        w.b(e.mispredicted);
    }
    for (SeqNum p : lastProducer_)
        w.u64(p);
    w.u64(nextSeq_);
    w.u32(iqOccupancy_);
    w.u32(lsqOccupancy_);
    w.u64(divBusyUntil_);
    w.u64(frontEndReadyAt_);
    w.u64(redirectBlockedOn_);
    w.b(fetchHalted_);
    w.b(pipeActive_);
}

void
OoOCore::loadExtra(snap::Reader &r)
{
    rob_.clear();
    std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
        RobEntry &e = rob_.emplace_back();
        e.seq = r.u64();
        e.pc = r.u64();
        e.inst = Inst::decode(r.u64());
        e.step.load(r);
        std::uint8_t st = r.u8();
        fatal_if(st > static_cast<std::uint8_t>(State::Done),
                 "snapshot: bad ROB entry state %u (corrupt snapshot)",
                 st);
        e.state = static_cast<State>(st);
        e.doneCycle = r.u64();
        e.retryAt = r.u64();
        e.src1Producer = r.u64();
        e.src2Producer = r.u64();
        e.isLd = r.b();
        e.isSt = r.b();
        e.mispredicted = r.b();
    }
    for (SeqNum &p : lastProducer_)
        p = r.u64();
    nextSeq_ = r.u64();
    iqOccupancy_ = r.u32();
    lsqOccupancy_ = r.u32();
    divBusyUntil_ = r.u64();
    frontEndReadyAt_ = r.u64();
    redirectBlockedOn_ = r.u64();
    fetchHalted_ = r.b();
    pipeActive_ = r.b();
}

} // namespace sst
