#!/usr/bin/env bash
# Build everything, run the test suite, regenerate every paper
# table/figure, and extract the CSV series.
#
# Usage: scripts/run_all.sh [bench-scale]
#   bench-scale: SST_BENCH_SCALE for the sweep (default 1 = full runs;
#                use e.g. 0.2 for a quick pass).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/bench_*; do
    echo ">>> $(basename "$b")"
    SST_BENCH_SCALE="$SCALE" "$b" 2>&1 | tee -a bench_output.txt
done

python3 scripts/extract_results.py bench_output.txt -o results/
echo "done: test_output.txt, bench_output.txt, results/"
