#!/usr/bin/env bash
# Chaos smoke test for the experiment service: run the smoke sweep
# sequentially, then as a 3-worker distributed service whose workers
# are killed (SIGKILL, no unwinding) at a deterministic simulated
# cycle on their first lease attempt, and require the two aggregate
# JSON documents to be byte-identical. This is the service's whole
# contract in one script: leases time out or die, jobs are re-leased
# and resumed from their last checkpoint, and none of that chaos may
# leave a fingerprint in the results.
#
# Usage: scripts/chaos_smoke.sh [sstsim-binary] [scratch-dir]
#   sstsim-binary: default build/tools/sstsim
#   scratch-dir:   default a fresh mktemp -d (kept on failure for
#                  post-mortem: broker output and worker logs live
#                  there)
set -euo pipefail
cd "$(dirname "$0")/.."

SSTSIM="${1:-build/tools/sstsim}"
SCRATCH="${2:-$(mktemp -d /tmp/sst-chaos.XXXXXX)}"
MANIFEST=examples/sweep_smoke.cfg
mkdir -p "$SCRATCH"

echo "== chaos smoke: scratch in $SCRATCH"

# Reference: plain in-process sweep, no service, no chaos.
"$SSTSIM" sweep "$MANIFEST" -j 4 --quiet \
    --json "$SCRATCH/sequential.json"

# Distributed run. Every worker is SIGKILLed at simulated cycle 50000
# of its first attempt at a job (later attempts run clean, so the
# sweep always converges); checkpoints every 20000 cycles mean the
# retry resumes mid-job rather than from cycle 0. The socket lives in
# the (short) scratch path: sun_path caps at ~107 bytes.
"$SSTSIM" sweep "$MANIFEST" --distributed 3 \
    --resume "$SCRATCH/artifacts" --socket "$SCRATCH/broker.sock" \
    --snap-every 20000 --chaos-kill-cycle 50000 \
    --chaos-kill-attempt 1 --json "$SCRATCH/distributed.json" \
    | tee "$SCRATCH/broker.out"

# The broker must actually have seen the chaos, not sailed through.
grep -q "worker deaths" "$SCRATCH/broker.out"
deaths=$(sed -n 's/.* \([0-9]\+\) worker deaths.*/\1/p' \
    "$SCRATCH/broker.out")
if [ "${deaths:-0}" -eq 0 ]; then
    echo "FAIL: no worker deaths recorded - chaos never fired" >&2
    exit 1
fi

if ! cmp "$SCRATCH/sequential.json" "$SCRATCH/distributed.json"; then
    echo "FAIL: distributed-with-chaos sweep JSON differs from" \
         "sequential (scratch kept in $SCRATCH)" >&2
    exit 1
fi

echo "OK: $deaths worker deaths, aggregate JSON byte-identical"
rm -rf "$SCRATCH"
