#!/usr/bin/env python3
"""Extract the BEGIN_CSV/END_CSV blocks that every bench binary emits.

Usage:
    for b in build/bench/bench_*; do $b; done > bench_output.txt
    python3 scripts/extract_results.py bench_output.txt -o results/

Writes one <tag>.csv per block (f2_speedup.csv, f4_memlat.csv, ...).
If matplotlib is importable, also renders a quick line/bar chart per
block into <tag>.png; otherwise it just writes the CSVs.
"""

import argparse
import csv
import os
import sys


def extract_blocks(lines):
    """Yield (tag, header, rows) per CSV block."""
    tag, rows = None, []
    for line in lines:
        line = line.rstrip("\n")
        if line.startswith("BEGIN_CSV "):
            tag, rows = line.split(" ", 1)[1], []
        elif line.startswith("END_CSV ") and tag is not None:
            if rows:
                yield tag, rows[0], rows[1:]
            tag = None
        elif tag is not None:
            rows.append(line.split(","))


def maybe_plot(tag, header, rows, outdir):
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return False
    labels = [r[0] for r in rows]
    numeric_cols = []
    for c in range(1, len(header)):
        try:
            numeric_cols.append(
                (header[c], [float(r[c]) for r in rows]))
        except (ValueError, IndexError):
            return False
    if not numeric_cols:
        return False
    fig, ax = plt.subplots(figsize=(8, 4.5))
    x = range(len(labels))
    for name, series in numeric_cols:
        ax.plot(x, series, marker="o", label=name)
    ax.set_xticks(list(x))
    ax.set_xticklabels(labels, rotation=30, ha="right")
    ax.set_title(tag)
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, tag + ".png"), dpi=120)
    plt.close(fig)
    return True


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("input", help="bench output file ('-' for stdin)")
    ap.add_argument("-o", "--outdir", default="results")
    args = ap.parse_args()

    src = sys.stdin if args.input == "-" else open(args.input)
    os.makedirs(args.outdir, exist_ok=True)

    count = 0
    for tag, header, rows in extract_blocks(src):
        path = os.path.join(args.outdir, tag + ".csv")
        with open(path, "w", newline="") as f:
            w = csv.writer(f)
            w.writerow(header)
            w.writerows(rows)
        plotted = maybe_plot(tag, header, rows, args.outdir)
        print(f"{tag}: {len(rows)} rows -> {path}"
              + (" (+png)" if plotted else ""))
        count += 1
    if count == 0:
        print("no CSV blocks found", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
